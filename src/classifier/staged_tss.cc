#include "classifier/staged_tss.h"

#include <algorithm>
#include <cassert>

namespace ovs {

namespace {

bool is_port_trie_field(FieldId f) noexcept {
  return f == FieldId::kTpSrc || f == FieldId::kTpDst;
}

PrefixBits trie_value(const FlowKey& pkt, FieldId f) noexcept {
  switch (f) {
    case FieldId::kNwSrc:
    case FieldId::kNwDst:
      return PrefixBits::from_u32(static_cast<uint32_t>(pkt.get(f)));
    case FieldId::kIpv6Src:
      return PrefixBits::from_u128(pkt.w[10], pkt.w[11]);
    case FieldId::kIpv6Dst:
      return PrefixBits::from_u128(pkt.w[12], pkt.w[13]);
    case FieldId::kTpSrc:
    case FieldId::kTpDst:
      return PrefixBits::from_u16(static_cast<uint16_t>(pkt.get(f)));
    default:
      return {};
  }
}

PrefixBits trie_prefix(const Rule& rule, FieldId f, unsigned len) noexcept {
  switch (f) {
    case FieldId::kNwSrc:
    case FieldId::kNwDst:
      return PrefixBits::from_u32(
          static_cast<uint32_t>(rule.match().key.get(f)), len);
    case FieldId::kIpv6Src:
      return PrefixBits::from_u128(rule.match().key.w[10],
                                   rule.match().key.w[11], len);
    case FieldId::kIpv6Dst:
      return PrefixBits::from_u128(rule.match().key.w[12],
                                   rule.match().key.w[13], len);
    case FieldId::kTpSrc:
    case FieldId::kTpDst:
      return PrefixBits::from_u16(
          static_cast<uint16_t>(rule.match().key.get(f)), len);
    default:
      return {};
  }
}

// Is this rule an ICMP rule matching the shared tp_src/tp_dst fields? Such
// rules triggered the production bug of §7.1 (see ClassifierConfig).
bool is_icmp_port_rule(const Rule& rule) noexcept {
  return rule.match().mask.is_exact(FieldId::kNwProto) &&
         (rule.match().key.nw_proto() == ipproto::kIcmp ||
          rule.match().key.nw_proto() == ipproto::kIcmpv6);
}

}  // namespace

// --- Tuple ------------------------------------------------------------------

Tuple::Tuple(const FlowMask& mask, bool gated)
    : mask_(mask), schema_(mask), gated_(gated) {
  n_stages_ = mask.last_stage() + 1;
  partitions_metadata_ = mask.is_exact(FieldId::kMetadata);
  for (size_t i = 0; i < kNumTrieFields; ++i)
    trie_plen_[i] = mask.prefix_len(kTrieFields[i]);
  if (gated_) {
    gate_stage_ = schema_.first_active_stage();
    gate_.assign(64, 0);
    gate_mask_ = gate_.size() - 1;
  }
}

void Tuple::gate_add(uint64_t gh) noexcept {
  uint16_t& c = gate_[gh & gate_mask_];
  if (c != 0xffff) ++c;
}

void Tuple::gate_remove(uint64_t gh) noexcept {
  uint16_t& c = gate_[gh & gate_mask_];
  if (c != 0xffff) {
    assert(c > 0);
    --c;
  }
}

void Tuple::maybe_grow_gate() {
  size_t target = 64;
  while (target < 65536 && target < 4 * (n_rules_ + 1)) target <<= 1;
  if (target <= gate_.size()) return;
  gate_.assign(target, 0);
  gate_mask_ = target - 1;
  rules_.for_each([&](Rule* head) {
    for (Rule* r = head; r != nullptr; r = RuleLinks::next(*r))
      gate_add(gate_hash(r->match().key));
  });
}

void Tuple::insert(Rule* rule) {
  assert(rule->match().mask == mask_);
  RuleLinks::key_hash(*rule) = full_hash(rule->match().key);

  // Intermediate stage sets.
  uint64_t h = 0;
  for (size_t s = 0; s + 1 < n_stages_; ++s) {
    h = hash_stage(rule->match().key, s, h);
    stage_sets_[s].add(h);
  }

  if (partitions_metadata_)
    metadata_values_.add(hash_mix64(rule->match().key.metadata()));

  if (gated_) {
    maybe_grow_gate();
    gate_add(gate_hash(rule->match().key));
  }

  RuleLinks::chain_insert(rules_, rule);

  ++n_rules_;
  ++prio_counts_[rule->priority()];
  recompute_pri_max();
  RuleLinks::sub(*rule) = this;
}

void Tuple::remove(Rule* rule) noexcept {
  assert(RuleLinks::sub(*rule) == this);
  RuleLinks::chain_remove(rules_, rule);
  RuleLinks::sub(*rule) = nullptr;

  uint64_t h = 0;
  for (size_t s = 0; s + 1 < n_stages_; ++s) {
    h = hash_stage(rule->match().key, s, h);
    stage_sets_[s].remove(h);
  }
  if (partitions_metadata_)
    metadata_values_.remove(hash_mix64(rule->match().key.metadata()));
  if (gated_) gate_remove(gate_hash(rule->match().key));

  --n_rules_;
  auto it = prio_counts_.find(rule->priority());
  if (--it->second == 0) prio_counts_.erase(it);
  recompute_pri_max();
}

void Tuple::recompute_pri_max() noexcept {
  pri_max_ = prio_counts_.empty() ? 0 : prio_counts_.rbegin()->first;
}

const Rule* Tuple::lookup_from(const FlowKey& pkt, bool staged,
                               size_t* stage_searched, size_t s,
                               uint64_t h) const noexcept {
  if (staged && n_stages_ > 1) {
    while (s + 1 < n_stages_) {
      if (!stage_sets_[s].contains(h)) {
        *stage_searched = s;
        return nullptr;
      }
      ++s;
      h = schema_.hash_stage(pkt, s, h);
    }
    // h now covers stages [0, n_stages_-1]; later stages are empty for this
    // mask, so h equals the full hash.
  } else {
    for (++s; s < kNumStages; ++s) h = schema_.hash_stage(pkt, s, h);
  }
  *stage_searched = n_stages_ - 1;
  Rule* const* head = rules_.find(
      h, [&](Rule* r) { return schema_.masked_equal(pkt, r->match().key); });
  return head != nullptr ? *head : nullptr;
}

// --- StagedTssEngine --------------------------------------------------------

struct StagedTssEngine::TrieCtx {
  std::array<bool, kNumTrieFields> computed{};
  std::array<PrefixTrie::LookupResult, kNumTrieFields> res;
};

StagedTssEngine::StagedTssEngine(const ClassifierConfig& cfg, bool gated)
    : cfg_(cfg), gated_(gated) {}

StagedTssEngine::~StagedTssEngine() = default;

Tuple* StagedTssEngine::find_tuple(const FlowMask& mask) const noexcept {
  Tuple* const* t =
      tuples_by_mask_.find(flow_mask_hash(mask), [&](const Tuple* tp) {
        return tp->mask() == mask;
      });
  return t != nullptr ? *t : nullptr;
}

Tuple* StagedTssEngine::get_tuple(const FlowMask& mask) {
  if (Tuple* t = find_tuple(mask)) return t;
  auto owned = std::make_unique<Tuple>(mask, gated_);
  Tuple* t = owned.get();
  tuples_.push_back(std::move(owned));
  sorted_.push_back(t);
  tuples_by_mask_.insert(flow_mask_hash(mask), t);
  sort_dirty_ = true;
  return t;
}

void StagedTssEngine::sort_tuples_if_dirty() noexcept {
  if (!sort_dirty_) return;
  std::stable_sort(sorted_.begin(), sorted_.end(),
                   [](const Tuple* a, const Tuple* b) {
                     return a->pri_max() > b->pri_max();
                   });
  sort_dirty_ = false;
}

void StagedTssEngine::trie_update(const Rule& rule, bool add) {
  for (size_t i = 0; i < kNumTrieFields; ++i) {
    const int plen = rule.match().mask.prefix_len(kTrieFields[i]);
    if (plen <= 0) continue;
    const PrefixBits p =
        trie_prefix(rule, kTrieFields[i], static_cast<unsigned>(plen));
    if (add) {
      tries_[i].insert(p);
      if (is_port_trie_field(kTrieFields[i]) && is_icmp_port_rule(rule))
        ++trie_icmp_rules_[i];
    } else {
      tries_[i].remove(p);
      if (is_port_trie_field(kTrieFields[i]) && is_icmp_port_rule(rule))
        --trie_icmp_rules_[i];
    }
  }
}

void StagedTssEngine::insert(Rule* rule) {
  Tuple* t = get_tuple(rule->match().mask);
  const int32_t old_pri_max = t->pri_max();
  t->insert(rule);
  if (t->pri_max() != old_pri_max || t->size() == 1) sort_dirty_ = true;
  trie_update(*rule, /*add=*/true);
  ++n_rules_;
  sort_tuples_if_dirty();
}

void StagedTssEngine::remove(Rule* rule) noexcept {
  Tuple* t = static_cast<Tuple*>(RuleLinks::sub(*rule));
  const int32_t old_pri_max = t->pri_max();
  t->remove(rule);
  trie_update(*rule, /*add=*/false);
  --n_rules_;
  if (t->empty()) {
    tuples_by_mask_.erase(flow_mask_hash(t->mask()),
                          [&](const Tuple* tp) { return tp == t; });
    sorted_.erase(std::find(sorted_.begin(), sorted_.end(), t));
    auto it = std::find_if(tuples_.begin(), tuples_.end(),
                           [&](const auto& up) { return up.get() == t; });
    tuples_.erase(it);
  } else if (t->pri_max() != old_pri_max) {
    sort_dirty_ = true;
  }
  sort_tuples_if_dirty();
}

Rule* StagedTssEngine::find_exact(const Match& match,
                                  int32_t priority) const noexcept {
  Match m = match;
  m.normalize();
  Tuple* t = find_tuple(m.mask);
  if (t == nullptr) return nullptr;
  const uint64_t h = t->full_hash(m.key);
  Rule* const* head =
      t->rules_.find(h, [&](Rule* r) { return r->match().key == m.key; });
  if (head == nullptr) return nullptr;
  for (Rule* r = *head; r != nullptr; r = RuleLinks::next(*r))
    if (r->priority() == priority) return r;
  return nullptr;
}

bool StagedTssEngine::check_tries(const Tuple& tuple, const FlowKey& pkt,
                                  TrieCtx& ctx,
                                  FlowWildcards* wc) const noexcept {
  for (size_t i = 0; i < kNumTrieFields; ++i) {
    const FieldId f = kTrieFields[i];
    const bool port = is_port_trie_field(f);
    if (port ? !cfg_.port_prefix_tracking : !cfg_.prefix_tracking) continue;
    const int plen = tuple.trie_plen(i);
    if (plen <= 0) continue;  // field unmatched, or a non-prefix mask
    // §7.1 outlier bug injection: ICMP rules poison the port tries.
    if (cfg_.icmp_port_trie_bug && port && trie_icmp_rules_[i] > 0) continue;
    if (!ctx.computed[i]) {
      ctx.res[i] = tries_[i].lookup(trie_value(pkt, f));
      ctx.computed[i] = true;
    }
    const PrefixTrie::LookupResult& res = ctx.res[i];
    if (!res.plens.test(static_cast<size_t>(plen))) {
      // No rule anywhere in the classifier has a /plen prefix containing
      // this packet's field value, so this tuple cannot match. The skip
      // decision examined only min(nbits, plen) leading bits.
      if (wc != nullptr)
        wc->set_prefix(f, std::min(res.nbits, static_cast<unsigned>(plen)));
      return true;
    }
  }
  return false;
}

const Rule* StagedTssEngine::lookup(const FlowKey& pkt, FlowWildcards* wc,
                                    uint32_t* n_searched) const noexcept {
  // Per-call counters, flushed once into the shared atomics at the end so
  // concurrent readers pay one relaxed RMW per counter instead of one per
  // tuple.
  uint32_t searched = 0, skipped = 0, stage_terms = 0, gate_probes = 0;
  TrieCtx ctx;
  const Rule* best = nullptr;
  for (Tuple* t : sorted_) {
    if (best != nullptr && cfg_.priority_sorting &&
        best->priority() >= t->pri_max())
      break;
    if (cfg_.partitioning && t->partitions_metadata() &&
        !t->partition_contains(pkt.metadata())) {
      // The skip decision consulted (all of) the metadata field.
      if (wc != nullptr) wc->set_exact(FieldId::kMetadata);
      ++skipped;
      continue;
    }
    if (check_tries(*t, pkt, ctx, wc)) {
      ++skipped;
      continue;
    }
    size_t stage_searched = 0;
    const Rule* r;
    if (gated_) {
      const uint64_t gh = t->gate_hash(pkt);
      ++gate_probes;
      if (!t->gate_contains(gh)) {
        // Gate miss: no rule in this subtable shares the packet's
        // gate-stage bits, so only those words were consulted (exactly a
        // stage miss at the gate stage).
        if (wc != nullptr)
          for (size_t i = 0; i < kStageEnd[t->gate_stage()]; ++i)
            wc->w[i] |= t->mask().w[i];
        ++skipped;
        continue;
      }
      r = t->lookup_from(pkt, cfg_.staged_lookup, &stage_searched,
                         t->gate_stage(), gh);
    } else {
      r = t->lookup(pkt, cfg_.staged_lookup, &stage_searched);
    }
    ++searched;
    if (wc != nullptr) {
      if (stage_searched + 1 < t->n_stages()) {
        // Early stage miss: only the fields of stages [0, stage_searched]
        // were consulted (paper §5.3).
        for (size_t i = 0; i < kStageEnd[stage_searched]; ++i)
          wc->w[i] |= t->mask().w[i];
      } else {
        wc->unite(t->mask());
      }
    }
    if (stage_searched + 1 < t->n_stages()) ++stage_terms;
    if (r != nullptr && (best == nullptr || r->priority() > best->priority())) {
      best = r;
      if (cfg_.first_match_only) break;
    }
  }
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (searched != 0)
    stats_.tuples_searched.fetch_add(searched, std::memory_order_relaxed);
  if (skipped != 0)
    stats_.tuples_skipped.fetch_add(skipped, std::memory_order_relaxed);
  if (stage_terms != 0)
    stats_.stage_terminations.fetch_add(stage_terms,
                                        std::memory_order_relaxed);
  if (gate_probes != 0)
    stats_.gate_probes.fetch_add(gate_probes, std::memory_order_relaxed);
  if (n_searched != nullptr) *n_searched = searched;
  return best;
}

void StagedTssEngine::lookup_batch(const FlowKey* keys, size_t n,
                                   const Rule** out,
                                   FlowWildcards* wcs) const noexcept {
  if (!gated_) {
    // The baseline engine keeps the scalar loop; the SoA pipeline below is
    // the gated engine's batch path.
    ClassifierBackend::lookup_batch(keys, n, out, wcs);
    return;
  }
  for (size_t base = 0; base < n; base += kBatchBlock) {
    const size_t m = std::min(kBatchBlock, n - base);
    batch_block(keys + base, m, out + base,
                wcs != nullptr ? wcs + base : nullptr);
  }
}

// Structure-of-arrays batch classification over one block of keys. For each
// subtable the block advances through probe rounds — gate hash, gate test,
// per-stage membership, final rule probe — with all surviving keys hashed
// word-at-a-time (mask word outer, keys inner) and the next round's table
// slots prefetched for the whole block before any key probes. Every per-key
// decision (priority cut, partition/trie/gate skip, stage miss, wildcard
// accumulation) replicates the scalar gated lookup exactly, so out[i]/wcs[i]
// are byte-identical to n scalar calls.
void StagedTssEngine::batch_block(const FlowKey* keys, size_t m,
                                  const Rule** out,
                                  FlowWildcards* wcs) const noexcept {
  uint32_t searched = 0, skipped = 0, stage_terms = 0, gate_probes = 0;
  std::array<const Rule*, kBatchBlock> best{};
  std::array<bool, kBatchBlock> done{};
  std::array<TrieCtx, kBatchBlock> tctx{};
  std::array<uint8_t, kBatchBlock> live;
  std::array<uint64_t, kBatchBlock> gh;
  size_t n_done = 0;

  for (Tuple* t : sorted_) {
    if (n_done == m) break;
    const MiniflowSchema& sch = t->schema();

    // Round 0: per-key priority cut and partition/trie skips (scalar
    // decisions — they touch per-key lazily computed trie state).
    size_t n_live = 0;
    for (size_t i = 0; i < m; ++i) {
      if (done[i]) continue;
      if (best[i] != nullptr && cfg_.priority_sorting &&
          best[i]->priority() >= t->pri_max()) {
        done[i] = true;
        ++n_done;
        continue;
      }
      if (cfg_.partitioning && t->partitions_metadata() &&
          !t->partition_contains(keys[i].metadata())) {
        if (wcs != nullptr) wcs[i].set_exact(FieldId::kMetadata);
        ++skipped;
        continue;
      }
      if (check_tries(*t, keys[i], tctx[i],
                      wcs != nullptr ? &wcs[i] : nullptr)) {
        ++skipped;
        continue;
      }
      live[n_live++] = static_cast<uint8_t>(i);
    }
    if (n_live == 0) continue;

    // Round 1: SoA gate hashes, then gate prefetch + test for the block.
    const size_t gs = t->gate_stage();
    for (size_t j = 0; j < n_live; ++j) gh[j] = 0;
    for (size_t wi = sch.stage_begin(gs); wi < sch.stage_end(gs); ++wi) {
      const size_t w = sch.word(wi);
      const uint64_t mw = sch.mask_word(wi);
      for (size_t j = 0; j < n_live; ++j)
        gh[j] = hash_add64(gh[j], keys[live[j]].w[w] & mw);
    }
    for (size_t j = 0; j < n_live; ++j) t->gate_prefetch(gh[j]);
    size_t n_act = 0;
    for (size_t j = 0; j < n_live; ++j) {
      ++gate_probes;
      const size_t i = live[j];
      if (!t->gate_contains(gh[j])) {
        if (wcs != nullptr)
          for (size_t w = 0; w < kStageEnd[gs]; ++w)
            wcs[i].w[w] |= t->mask().w[w];
        ++skipped;
        continue;
      }
      live[n_act] = static_cast<uint8_t>(i);
      gh[n_act] = gh[j];
      ++n_act;
    }
    if (n_act == 0) continue;

    // Rounds 2..k: staged membership sets, prefetched per round; survivors'
    // hashes are extended stage-by-stage in the same SoA shape.
    size_t s = gs;
    if (cfg_.staged_lookup && t->n_stages() > 1) {
      while (s + 1 < t->n_stages() && n_act > 0) {
        for (size_t j = 0; j < n_act; ++j) t->stage_sets_[s].prefetch(gh[j]);
        size_t keep = 0;
        for (size_t j = 0; j < n_act; ++j) {
          const size_t i = live[j];
          if (!t->stage_sets_[s].contains(gh[j])) {
            ++searched;
            ++stage_terms;
            if (wcs != nullptr)
              for (size_t w = 0; w < kStageEnd[s]; ++w)
                wcs[i].w[w] |= t->mask().w[w];
            continue;
          }
          live[keep] = static_cast<uint8_t>(i);
          gh[keep] = gh[j];
          ++keep;
        }
        n_act = keep;
        if (n_act == 0) break;
        ++s;
        for (size_t wi = sch.stage_begin(s); wi < sch.stage_end(s); ++wi) {
          const size_t w = sch.word(wi);
          const uint64_t mw = sch.mask_word(wi);
          for (size_t j = 0; j < n_act; ++j)
            gh[j] = hash_add64(gh[j], keys[live[j]].w[w] & mw);
        }
      }
      if (n_act == 0) continue;
    } else {
      for (size_t s2 = s + 1; s2 < kNumStages; ++s2) {
        for (size_t wi = sch.stage_begin(s2); wi < sch.stage_end(s2); ++wi) {
          const size_t w = sch.word(wi);
          const uint64_t mw = sch.mask_word(wi);
          for (size_t j = 0; j < n_act; ++j)
            gh[j] = hash_add64(gh[j], keys[live[j]].w[w] & mw);
        }
      }
    }

    // Final round: rule-table probes, prefetched for the whole block.
    for (size_t j = 0; j < n_act; ++j) t->rules_.prefetch(gh[j]);
    for (size_t j = 0; j < n_act; ++j) {
      const size_t i = live[j];
      ++searched;
      if (wcs != nullptr) wcs[i].unite(t->mask());
      Rule* const* head = t->rules_.find(gh[j], [&](Rule* r) {
        return sch.masked_equal(keys[i], r->match().key);
      });
      if (head != nullptr &&
          (best[i] == nullptr || (*head)->priority() > best[i]->priority())) {
        best[i] = *head;
        if (cfg_.first_match_only) {
          done[i] = true;
          ++n_done;
        }
      }
    }
  }

  for (size_t i = 0; i < m; ++i) out[i] = best[i];

  stats_.lookups.fetch_add(m, std::memory_order_relaxed);
  if (searched != 0)
    stats_.tuples_searched.fetch_add(searched, std::memory_order_relaxed);
  if (skipped != 0)
    stats_.tuples_skipped.fetch_add(skipped, std::memory_order_relaxed);
  if (stage_terms != 0)
    stats_.stage_terminations.fetch_add(stage_terms,
                                        std::memory_order_relaxed);
  if (gate_probes != 0)
    stats_.gate_probes.fetch_add(gate_probes, std::memory_order_relaxed);
}

ClassifierStats StagedTssEngine::stats() const noexcept {
  ClassifierStats s;
  s.lookups = stats_.lookups.load(std::memory_order_relaxed);
  s.tuples_searched = stats_.tuples_searched.load(std::memory_order_relaxed);
  s.tuples_skipped = stats_.tuples_skipped.load(std::memory_order_relaxed);
  s.stage_terminations =
      stats_.stage_terminations.load(std::memory_order_relaxed);
  s.gate_probes = stats_.gate_probes.load(std::memory_order_relaxed);
  return s;
}

void StagedTssEngine::reset_stats() const noexcept {
  stats_.lookups.store(0, std::memory_order_relaxed);
  stats_.tuples_searched.store(0, std::memory_order_relaxed);
  stats_.tuples_skipped.store(0, std::memory_order_relaxed);
  stats_.stage_terminations.store(0, std::memory_order_relaxed);
  stats_.gate_probes.store(0, std::memory_order_relaxed);
}

void StagedTssEngine::for_each_rule(
    const std::function<void(Rule*)>& f) const {
  for (const auto& t : tuples_)
    t->rules_.for_each([&](Rule* head) {
      for (Rule* r = head; r != nullptr; r = RuleLinks::next(*r)) f(r);
    });
}

}  // namespace ovs
