// A Linux-bridge-like baseline: an in-kernel learning switch that processes
// EVERY packet through its full path, with an iptables-style rule list
// evaluated per packet (paper §7.2, "Comparison to in-kernel switch").
//
// The point of the comparison: "built-in kernel functions have per-packet
// overhead, whereas Open vSwitch's overhead is generally fixed
// per-megaflow". Adding even one filtering rule makes the bridge traverse
// the netfilter hook for every packet; OVS folds the same policy into the
// megaflow cache for free.
#pragma once

#include <cstdint>
#include <vector>

#include "ofproto/mac_learning.h"
#include "packet/match.h"
#include "packet/packet.h"
#include "sim/cost_model.h"

namespace ovs {

class LinuxBridge {
 public:
  struct Config {
    // Baseline forwarding cost per packet. Calibrated so the empty-ruleset
    // bridge matches OVS throughput (the paper measured both at 18.8 Gbps
    // and nearly equal TCP_CRR rates): equal to OVS's EMC-hit path cost.
    double per_packet_cycles = 395;
    // Entering the netfilter hook at all (charged once any rule exists);
    // calibrated to the paper's 26x CPU amplification from one rule.
    double netfilter_hook_cycles = 9950;
    // Evaluating one rule in the chain.
    double per_rule_cycles = 150;
    MacLearning::Config mac;
  };

  LinuxBridge() : LinuxBridge(Config{}) {}
  explicit LinuxBridge(const Config& cfg) : cfg_(cfg), mac_(cfg.mac) {}

  void add_port(uint32_t port) { ports_.push_back(port); }

  // Appends an iptables-like rule; matching packets are dropped.
  void add_drop_rule(const Match& match) { rules_.push_back(match); }
  size_t rule_count() const noexcept { return rules_.size(); }

  enum class Verdict : uint8_t { kForwarded, kFlooded, kDropped };

  Verdict process(const Packet& pkt, uint64_t now_ns);

  struct Stats {
    uint64_t packets = 0;
    uint64_t dropped = 0;
    uint64_t flooded = 0;
    uint64_t forwarded = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  double cycles() const noexcept { return cycles_; }
  void reset() noexcept {
    stats_ = Stats{};
    cycles_ = 0;
  }

 private:
  Config cfg_;
  MacLearning mac_;
  std::vector<uint32_t> ports_;
  std::vector<Match> rules_;
  Stats stats_;
  double cycles_ = 0;
};

}  // namespace ovs
