#include "baseline/linux_bridge.h"

namespace ovs {

LinuxBridge::Verdict LinuxBridge::process(const Packet& pkt, uint64_t now_ns) {
  ++stats_.packets;
  cycles_ += cfg_.per_packet_cycles;

  // Netfilter chain: per-packet, linear in the number of rules.
  if (!rules_.empty()) {
    cycles_ += cfg_.netfilter_hook_cycles +
               cfg_.per_rule_cycles * static_cast<double>(rules_.size());
    for (const Match& r : rules_) {
      if (r.matches(pkt.key)) {
        ++stats_.dropped;
        return Verdict::kDropped;
      }
    }
  }

  mac_.learn(pkt.key.eth_src(), pkt.key.vlan_tci(), pkt.key.in_port(),
             now_ns);
  if (!pkt.key.eth_dst().is_multicast() &&
      mac_.lookup(pkt.key.eth_dst(), pkt.key.vlan_tci(), now_ns)
          .has_value()) {
    ++stats_.forwarded;
    return Verdict::kForwarded;
  }
  ++stats_.flooded;
  return Verdict::kFlooded;
}

}  // namespace ovs
