// 64-bit hashing primitives used throughout the classifier and caches.
//
// The classifier needs (a) a strong word-at-a-time mixer so tuple-space hash
// tables behave uniformly under adversarial-looking inputs (sequential IPs,
// ports), and (b) *incremental* hashing: staged lookup (paper §5.3) computes
// the hash of stage k by extending the hash of stage k-1 rather than
// re-hashing from scratch ("hashes could be computed incrementally from one
// stage to the next").
#pragma once

#include <cstddef>
#include <cstdint>

namespace ovs {

// SplitMix64 finalizer: a full-avalanche bijective mixer.
constexpr uint64_t hash_mix64(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Extends running hash `basis` with one 64-bit word.
constexpr uint64_t hash_add64(uint64_t basis, uint64_t word) noexcept {
  return hash_mix64(basis ^ (word * 0xff51afd7ed558ccdULL));
}

// Hashes `n` words starting at `words`, extending `basis`. This is the
// incremental primitive: hash_words(w, 0, k2, b) ==
// hash_words(w + k1, 0, k2 - k1, hash_words(w, 0, k1, b)).
constexpr uint64_t hash_words(const uint64_t* words, size_t n,
                              uint64_t basis = 0) noexcept {
  uint64_t h = basis;
  for (size_t i = 0; i < n; ++i) h = hash_add64(h, words[i]);
  return h;
}

// Byte-string hash for identifiers and tests (FNV-1a then mixed).
constexpr uint64_t hash_bytes(const void* data, size_t n,
                              uint64_t basis = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ basis;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return hash_mix64(h);
}

}  // namespace ovs
