// Open-addressing hash containers keyed by a caller-supplied 64-bit hash.
//
// Tuple-space search probes one hash table per tuple on the packet fast
// path, so these tables are flat arrays with linear probing (no per-node
// allocation, one cache line per probe in the common case). The caller
// supplies the hash (already computed incrementally during staged lookup)
// and an equality predicate over the stored value, which lets the classifier
// store bare rule pointers and compare masked keys without materializing
// them.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ovs {

// HashBuckets<V>: multiset of (hash, V) with caller-driven equality.
template <typename V>
class HashBuckets {
 public:
  HashBuckets() = default;

  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Finds the first entry with this hash satisfying pred(value).
  template <typename Pred>
  V* find(uint64_t hash, Pred&& pred) noexcept {
    if (slots_.empty()) return nullptr;
    for (size_t i = probe_start(hash);; i = next(i)) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return nullptr;
      if (s.state == State::kFull && s.hash == hash && pred(s.value))
        return &s.value;
    }
  }
  template <typename Pred>
  const V* find(uint64_t hash, Pred&& pred) const noexcept {
    return const_cast<HashBuckets*>(this)->find(hash,
                                                std::forward<Pred>(pred));
  }

  // Inserts unconditionally (duplicates allowed; use find first to dedupe).
  void insert(uint64_t hash, V value) {
    maybe_grow();
    insert_no_grow(hash, std::move(value));
    ++size_;
  }

  // Erases the first entry with this hash satisfying pred. Returns success.
  template <typename Pred>
  bool erase(uint64_t hash, Pred&& pred) noexcept {
    if (slots_.empty()) return false;
    for (size_t i = probe_start(hash);; i = next(i)) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return false;
      if (s.state == State::kFull && s.hash == hash && pred(s.value)) {
        s.state = State::kTombstone;
        s.value = V{};
        --size_;
        ++tombstones_;
        return true;
      }
    }
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_)
      if (s.state == State::kFull) f(s.value);
  }

  // Hints the probe start for an upcoming find() into cache. The batched
  // classifier lookup issues these between probe rounds so the memory
  // latency of n independent probes overlaps instead of serializing.
  void prefetch(uint64_t hash) const noexcept {
    if (!slots_.empty()) __builtin_prefetch(&slots_[probe_start(hash)]);
  }

  void clear() noexcept {
    slots_.clear();
    size_ = tombstones_ = 0;
  }

 private:
  enum class State : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  struct Slot {
    uint64_t hash = 0;
    V value{};
    State state = State::kEmpty;
  };

  size_t probe_start(uint64_t hash) const noexcept {
    return hash & (slots_.size() - 1);
  }
  size_t next(size_t i) const noexcept { return (i + 1) & (slots_.size() - 1); }

  void insert_no_grow(uint64_t hash, V value) noexcept {
    for (size_t i = probe_start(hash);; i = next(i)) {
      Slot& s = slots_[i];
      if (s.state != State::kFull) {
        if (s.state == State::kTombstone) --tombstones_;
        s.hash = hash;
        s.value = std::move(value);
        s.state = State::kFull;
        return;
      }
    }
  }

  void maybe_grow() {
    if (slots_.empty()) {
      slots_.resize(16);
      return;
    }
    // Keep load (incl. tombstones) under 70%.
    if ((size_ + tombstones_ + 1) * 10 < slots_.size() * 7) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * (size_ + 1 > old.size() / 2 ? 2 : 1), Slot{});
    tombstones_ = 0;
    for (Slot& s : old)
      if (s.state == State::kFull) insert_no_grow(s.hash, std::move(s.value));
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

// HashCounter: multiset of 64-bit hashes with per-hash counts. Used as the
// membership set for intermediate lookup stages (paper §5.3): a stage only
// has to answer "might any rule match through this stage?".
class HashCounter {
 public:
  bool contains(uint64_t hash) const noexcept {
    return counts_.find(hash, [&](const Entry& e) { return e.key == hash; }) !=
           nullptr;
  }

  void add(uint64_t hash) {
    if (Entry* e =
            counts_.find(hash, [&](const Entry& e2) { return e2.key == hash; }))
      ++e->count;
    else
      counts_.insert(hash, Entry{hash, 1});
  }

  void remove(uint64_t hash) noexcept {
    Entry* e =
        counts_.find(hash, [&](const Entry& e2) { return e2.key == hash; });
    assert(e != nullptr && e->count > 0);
    if (e && --e->count == 0)
      counts_.erase(hash, [&](const Entry& e2) { return e2.key == hash; });
  }

  size_t distinct() const noexcept { return counts_.size(); }

  void prefetch(uint64_t hash) const noexcept { counts_.prefetch(hash); }

 private:
  struct Entry {
    uint64_t key = 0;
    uint32_t count = 0;
  };
  HashBuckets<Entry> counts_;
};

}  // namespace ovs
