// Minimal leveled logging. The library is silent by default; examples and
// the daemon raise the level to narrate interesting events.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace ovs {

enum class LogLevel : int { kNone = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static LogLevel& level() noexcept {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  template <typename... Args>
  static void log(LogLevel lvl, const char* tag, const char* fmt,
                  Args&&... args) {
    if (static_cast<int>(lvl) > static_cast<int>(level())) return;
    std::fprintf(stderr, "[%s] ", tag);
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-vararg): thin printf shim.
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
  }
};

#define OVS_WARN(...) ::ovs::Logger::log(::ovs::LogLevel::kWarn, "warn", __VA_ARGS__)
#define OVS_INFO(...) ::ovs::Logger::log(::ovs::LogLevel::kInfo, "info", __VA_ARGS__)
#define OVS_DEBUG(...) ::ovs::Logger::log(::ovs::LogLevel::kDebug, "debug", __VA_ARGS__)

}  // namespace ovs
