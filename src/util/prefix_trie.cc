#include "util/prefix_trie.h"

#include <cassert>

namespace ovs {

void PrefixTrie::insert(const PrefixBits& p) {
  ++n_prefixes_;
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->bits = p;
    root_->n_rules = 1;
    return;
  }
  std::unique_ptr<Node>* cur = &root_;
  unsigned i = 0;  // bits of p consumed so far
  for (;;) {
    Node& n = **cur;
    const unsigned want = p.size() - i;
    const unsigned m = n.bits.size() < want ? n.bits.size() : want;
    const unsigned d = n.bits.common_prefix(p, i, m);
    if (d < n.bits.size()) {
      // Split n after d bits: a new interior node takes the shared prefix
      // and the old node keeps its tail as a child.
      auto split = std::make_unique<Node>();
      split->bits = n.bits.prefix(d);
      std::unique_ptr<Node> old = std::move(*cur);
      old->bits = old->bits.suffix(d);
      split->child[old->bits.bit(0)] = std::move(old);
      if (i + d == p.size()) {
        // The inserted prefix ends exactly at the split point.
        split->n_rules = 1;
      } else {
        auto leaf = std::make_unique<Node>();
        leaf->bits = p.suffix(i + d);
        leaf->n_rules = 1;
        split->child[leaf->bits.bit(0)] = std::move(leaf);
      }
      *cur = std::move(split);
      return;
    }
    // Fully matched this node's bits.
    i += d;
    if (i == p.size()) {
      ++n.n_rules;
      return;
    }
    const bool b = p.bit(i);
    if (!n.child[b]) {
      auto leaf = std::make_unique<Node>();
      leaf->bits = p.suffix(i);
      leaf->n_rules = 1;
      n.child[b] = std::move(leaf);
      return;
    }
    cur = &n.child[b];
  }
}

void PrefixTrie::maybe_collapse(std::unique_ptr<Node>& node) {
  Node& n = *node;
  if (n.n_rules > 0) return;
  if (!n.child[0] && !n.child[1]) {
    node.reset();
    return;
  }
  if (n.child[0] && n.child[1]) return;  // interior branch point: keep
  // Exactly one child: merge it into this node.
  std::unique_ptr<Node> child = std::move(n.child[0] ? n.child[0] : n.child[1]);
  PrefixBits merged = n.bits;
  merged.append(child->bits);
  child->bits = merged;
  node = std::move(child);
}

bool PrefixTrie::remove_rec(std::unique_ptr<Node>& node, const PrefixBits& p,
                            unsigned i) {
  if (!node) return false;
  Node& n = *node;
  const unsigned want = p.size() - i;
  if (n.bits.size() > want) return false;
  if (n.bits.common_prefix(p, i, n.bits.size()) != n.bits.size()) return false;
  i += n.bits.size();
  if (i == p.size()) {
    if (n.n_rules == 0) return false;
    --n.n_rules;
    maybe_collapse(node);
    return true;
  }
  if (!remove_rec(n.child[p.bit(i)], p, i)) return false;
  maybe_collapse(node);
  return true;
}

bool PrefixTrie::remove(const PrefixBits& p) {
  if (!remove_rec(root_, p, 0)) return false;
  --n_prefixes_;
  return true;
}

PrefixTrie::LookupResult PrefixTrie::lookup(
    const PrefixBits& value) const noexcept {
  // Direct translation of Figure 3 TRIESEARCH, with plens indexed by prefix
  // *length* (plens[L] corresponds to the paper's plens[L-1]).
  LookupResult r;
  const Node* node = root_.get();
  const Node* prev = nullptr;
  unsigned i = 0;
  while (node != nullptr) {
    for (unsigned c = 0; c < node->bits.size(); ++c, ++i) {
      if (value.bit(i) != node->bits.bit(c)) {
        r.nbits = i + 1;
        return r;
      }
    }
    if (node->n_rules > 0) r.plens.set(i);
    if (i >= value.size()) {
      r.nbits = i;
      return r;
    }
    prev = node;
    node = node->child[value.bit(i)].get();
  }
  if (prev != nullptr && prev->has_child()) ++i;
  r.nbits = i;
  return r;
}

}  // namespace ovs
