// Miniflow-style sparse hashing over mask-active flow words, shared by every
// structure that keys a hash table by a masked FlowKey: classifier subtables
// (all engines), the sharded datapath's megaflow tuples, and the EMC
// tuple-index hints. Real flow masks touch 2-5 of the 15 key words, so each
// consumer precomputes which words carry mask bits once per mask and then
// hashes/compares only those.
//
// The schema stores (word index, mask word) pairs in ascending word order,
// with per-stage offsets so the classifier's staged lookup (§5.3) can hash
// stage k incrementally on top of stage k-1 — iterating the flat array from
// the start to a stage boundary is exactly the chained per-stage hash.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "packet/flow_key.h"
#include "util/hash.h"

namespace ovs {

// Canonical hash of a whole mask, used by every engine's mask -> subtable
// index.
inline uint64_t flow_mask_hash(const FlowMask& mask) noexcept {
  return hash_words(mask.w.data(), kFlowWords);
}

// Is every bit of `a` also set in `b`? Distinct masks with a ⊆ b are the
// subsumption edges the chained-tuple engine orders subtables by.
inline bool flow_mask_subset(const FlowMask& a, const FlowMask& b) noexcept {
  for (size_t w = 0; w < kFlowWords; ++w)
    if ((a.w[w] & ~b.w[w]) != 0) return false;
  return true;
}

class MiniflowSchema {
 public:
  MiniflowSchema() { stage_off_.fill(0); }

  explicit MiniflowSchema(const FlowMask& mask) {
    stage_off_.fill(0);
    for (size_t s = 0, w = 0; s < kNumStages; ++s) {
      stage_off_[s] = static_cast<uint8_t>(words_.size());
      for (; w < kStageEnd[s]; ++w) {
        if (mask.w[w] == 0) continue;
        words_.push_back(static_cast<uint8_t>(w));
        mask_w_.push_back(mask.w[w]);
      }
    }
    stage_off_[kNumStages] = static_cast<uint8_t>(words_.size());
    first_active_stage_ = kNumStages - 1;
    for (size_t s = 0; s < kNumStages; ++s)
      if (stage_off_[s + 1] > stage_off_[s]) {
        first_active_stage_ = s;
        break;
      }
  }

  // Hash of stage `stage`'s masked words, chained onto `basis` (the hash of
  // the preceding stages). Empty stages return `basis` unchanged.
  uint64_t hash_stage(const FlowWords& src, size_t stage,
                      uint64_t basis) const noexcept {
    uint64_t h = basis;
    for (size_t i = stage_off_[stage]; i < stage_off_[stage + 1]; ++i)
      h = hash_add64(h, src.w[words_[i]] & mask_w_[i]);
    return h;
  }

  // Hash over every masked word; equals chaining hash_stage over all stages.
  uint64_t full_hash(const FlowWords& src) const noexcept {
    uint64_t h = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      h = hash_add64(h, src.w[words_[i]] & mask_w_[i]);
    return h;
  }

  // Does `pkt` match `stored` under this mask? `stored` must be pre-masked
  // (Match::normalize guarantees it for rule keys), so only active words
  // need comparing.
  bool masked_equal(const FlowKey& pkt, const FlowKey& stored) const noexcept {
    for (size_t i = 0; i < words_.size(); ++i)
      if ((pkt.w[words_[i]] & mask_w_[i]) != stored.w[words_[i]]) return false;
    return true;
  }

  // Flat (word index, mask word) access for structure-of-arrays batch
  // hashing: callers iterate [stage_begin(s), stage_end(s)) with the key
  // loop innermost, so one mask word is applied to a whole batch at a time.
  size_t stage_begin(size_t stage) const noexcept { return stage_off_[stage]; }
  size_t stage_end(size_t stage) const noexcept {
    return stage_off_[stage + 1];
  }
  uint8_t word(size_t i) const noexcept { return words_[i]; }
  uint64_t mask_word(size_t i) const noexcept { return mask_w_[i]; }

  size_t n_words() const noexcept { return words_.size(); }
  bool stage_empty(size_t stage) const noexcept {
    return stage_off_[stage + 1] == stage_off_[stage];
  }
  // First stage with any masked word (kNumStages-1 for an empty mask).
  size_t first_active_stage() const noexcept { return first_active_stage_; }

 private:
  std::vector<uint8_t> words_;    // ascending indices of mask-active words
  std::vector<uint64_t> mask_w_;  // parallel mask words
  std::array<uint8_t, kNumStages + 1> stage_off_;
  size_t first_active_stage_ = 0;
};

}  // namespace ovs
