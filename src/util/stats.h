// Small statistics helpers: percentiles and CDF extraction, used by the
// production-fleet benchmarks (paper Figures 4-7) and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ovs {

// Accumulates samples; answers percentile and CDF queries.
class Distribution {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const noexcept { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0;
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double min() const { return percentile(0); }
  double max() const { return percentile(100); }

  // p in [0, 100]; nearest-rank with linear interpolation.
  double percentile(double p) const {
    if (samples_.empty()) return 0;
    sort();
    const double rank =
        (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  // Fraction of samples <= x.
  double cdf(double x) const {
    if (samples_.empty()) return 0;
    sort();
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  // Evenly spaced CDF points (x, F(x)) suitable for printing a figure series.
  std::vector<std::pair<double, double>> cdf_points(size_t n_points) const {
    std::vector<std::pair<double, double>> pts;
    if (samples_.empty() || n_points == 0) return pts;
    sort();
    for (size_t i = 0; i < n_points; ++i) {
      const double q = 100.0 * static_cast<double>(i) /
                       static_cast<double>(n_points - 1 ? n_points - 1 : 1);
      pts.emplace_back(percentile(q), q / 100.0);
    }
    return pts;
  }

  const std::vector<double>& samples() const {
    sort();
    return samples_;
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ovs
