// Deterministic fault injection for the slow path.
//
// The cache hierarchy is only as strong as its miss path (§6, §7.2): what
// keeps a switch alive under adversarial churn is how it behaves when
// upcalls are lost, flow installs fail, the revalidator misses its deadline,
// or cached state rots. This injector gives tests and benches a seedable,
// scriptable way to exercise exactly those failure modes.
//
// Each FaultPoint is an independent stream of *occurrences*: every time the
// instrumented code reaches the decision point it calls should_fire(), which
// consumes one occurrence and answers whether the fault happens. Three
// schedules compose per point (any of them firing fires the fault):
//
//   * probability p      — each occurrence fires i.i.d. with probability p,
//                          drawn from a per-point RNG so enabling one point
//                          never perturbs another point's stream;
//   * window [from, to)  — occurrences in the half-open index range fire
//                          deterministically (a scripted outage);
//   * script {i, j, ...} — exact occurrence indices fire (surgical tests).
//
// Thread-safe: decision points live on the single-threaded Switch/Datapath
// slow path *and* on ShardedDatapath worker upcall flushes, so all state is
// guarded by a mutex (the cost is irrelevant off the fast path).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/rng.h"

namespace ovs {

enum class FaultPoint : uint8_t {
  kUpcallDrop = 0,     // miss upcall vanishes before reaching userspace
  kUpcallDelay,        // upcall parked; delivered one handler round late
  kUpcallDuplicate,    // upcall delivered twice (netlink redelivery)
  kInstallTableFull,   // flow install fails: table full (ENOSPC-like)
  kInstallTransient,   // flow install fails: transient error (EAGAIN-like)
  kEntryCorrupt,       // an installed entry's actions are scrambled
  kEntryExpire,        // an installed entry's used time is zeroed
  kRevalidatorStall,   // a revalidation pass blocks past its deadline
  kUserspaceCrash,     // vswitchd dies; datapath keeps serving its cache
  kReconcileStall,     // restart reconciliation blocks for one round
  // Control-plane wire faults (DESIGN.md §12): consulted by the
  // controller<->switch transport (src/ctrl/) per message or per channel.
  kCtrlMsgDrop,        // control message vanishes on the wire
  kCtrlMsgDelay,       // control message delivered late
  kCtrlMsgDuplicate,   // control message delivered twice
  kCtrlConnReset,      // channel torn down; in-flight messages lost
  kControllerCrash,    // the active controller process dies
  kNumPoints
};

constexpr size_t kNumFaultPoints = static_cast<size_t>(FaultPoint::kNumPoints);

inline const char* fault_point_name(FaultPoint p) noexcept {
  switch (p) {
    case FaultPoint::kUpcallDrop: return "upcall_drop";
    case FaultPoint::kUpcallDelay: return "upcall_delay";
    case FaultPoint::kUpcallDuplicate: return "upcall_duplicate";
    case FaultPoint::kInstallTableFull: return "install_table_full";
    case FaultPoint::kInstallTransient: return "install_transient";
    case FaultPoint::kEntryCorrupt: return "entry_corrupt";
    case FaultPoint::kEntryExpire: return "entry_expire";
    case FaultPoint::kRevalidatorStall: return "revalidator_stall";
    case FaultPoint::kUserspaceCrash: return "userspace_crash";
    case FaultPoint::kReconcileStall: return "reconcile_stall";
    case FaultPoint::kCtrlMsgDrop: return "ctrl_msg_drop";
    case FaultPoint::kCtrlMsgDelay: return "ctrl_msg_delay";
    case FaultPoint::kCtrlMsgDuplicate: return "ctrl_msg_duplicate";
    case FaultPoint::kCtrlConnReset: return "ctrl_conn_reset";
    case FaultPoint::kControllerCrash: return "controller_crash";
    default: return "?";
  }
}

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xFA117) noexcept : seed_(seed) {
    for (size_t i = 0; i < kNumFaultPoints; ++i)
      points_[i].rng = Rng(seed + 0x9E3779B97F4A7C15ULL * (i + 1));
    victim_rng_ = Rng(seed ^ 0xBADF00D);
  }

  void set_probability(FaultPoint p, double prob) {
    std::lock_guard<std::mutex> lk(mu_);
    at(p).probability = prob;
  }

  // Occurrences with index in [from, to) fire deterministically.
  void arm_window(FaultPoint p, uint64_t from, uint64_t to) {
    std::lock_guard<std::mutex> lk(mu_);
    at(p).window_from = from;
    at(p).window_to = to;
  }

  // Exact occurrence indices that fire. Indices already consumed are inert.
  void script(FaultPoint p, std::vector<uint64_t> fire_at) {
    std::lock_guard<std::mutex> lk(mu_);
    std::sort(fire_at.begin(), fire_at.end());
    at(p).script = std::move(fire_at);
    at(p).script_pos = 0;
  }

  // Clears every schedule for the point; occurrence/fired counters survive.
  void disarm(FaultPoint p) {
    std::lock_guard<std::mutex> lk(mu_);
    Point& pt = at(p);
    pt.probability = 0;
    pt.window_from = pt.window_to = 0;
    pt.script.clear();
    pt.script_pos = 0;
  }

  void disarm_all() {
    for (size_t i = 0; i < kNumFaultPoints; ++i)
      disarm(static_cast<FaultPoint>(i));
  }

  // Rewinds one point for replay: the occurrence/fired counters return to
  // zero, the script cursor to its start, and the probability stream to its
  // seed-derived origin. Schedules stay armed, so a reconnecting channel
  // re-runs the same deterministic fault script it saw the first time.
  void reset(FaultPoint p) {
    std::lock_guard<std::mutex> lk(mu_);
    Point& pt = at(p);
    pt.occurrences = 0;
    pt.fired = 0;
    pt.script_pos = 0;
    pt.rng = Rng(seed_ + 0x9E3779B97F4A7C15ULL *
                             (static_cast<size_t>(p) + 1));
  }

  // Rewinds every point and the victim stream (whole-injector replay).
  void reset() {
    for (size_t i = 0; i < kNumFaultPoints; ++i)
      reset(static_cast<FaultPoint>(i));
    std::lock_guard<std::mutex> lk(mu_);
    victim_rng_ = Rng(seed_ ^ 0xBADF00D);
  }

  // The instrumented decision point: consumes one occurrence.
  bool should_fire(FaultPoint p) {
    std::lock_guard<std::mutex> lk(mu_);
    Point& pt = at(p);
    const uint64_t occ = pt.occurrences++;
    bool fire = pt.window_from < pt.window_to && occ >= pt.window_from &&
                occ < pt.window_to;
    while (pt.script_pos < pt.script.size() &&
           pt.script[pt.script_pos] < occ)
      ++pt.script_pos;
    if (!fire && pt.script_pos < pt.script.size() &&
        pt.script[pt.script_pos] == occ) {
      fire = true;
      ++pt.script_pos;
    }
    if (!fire && pt.probability > 0) fire = pt.rng.chance(pt.probability);
    if (fire) ++pt.fired;
    return fire;
  }

  // Deterministic victim selection (e.g. which entry to corrupt).
  uint64_t pick(uint64_t bound) {
    std::lock_guard<std::mutex> lk(mu_);
    return victim_rng_.uniform(bound);
  }

  uint64_t fired(FaultPoint p) const {
    std::lock_guard<std::mutex> lk(mu_);
    return at(p).fired;
  }
  uint64_t occurrences(FaultPoint p) const {
    std::lock_guard<std::mutex> lk(mu_);
    return at(p).occurrences;
  }
  uint64_t total_fired() const {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = 0;
    for (const Point& pt : points_) n += pt.fired;
    return n;
  }

 private:
  struct Point {
    double probability = 0;
    uint64_t window_from = 0;
    uint64_t window_to = 0;
    std::vector<uint64_t> script;
    size_t script_pos = 0;
    uint64_t occurrences = 0;
    uint64_t fired = 0;
    Rng rng{0};
  };

  Point& at(FaultPoint p) noexcept {
    return points_[static_cast<size_t>(p)];
  }
  const Point& at(FaultPoint p) const noexcept {
    return points_[static_cast<size_t>(p)];
  }

  mutable std::mutex mu_;
  uint64_t seed_ = 0;  // construction seed, kept so reset() can rewind
  std::array<Point, kNumFaultPoints> points_;
  Rng victim_rng_{0};
};

}  // namespace ovs
