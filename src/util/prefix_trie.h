// Prefix tracking trie (paper §5.4, Figure 3).
//
// The classifier keeps one PrefixTrie per prefix-trackable field (IPv4/IPv6
// source/destination address, and optionally the L4 ports). The trie holds
// every prefix that any classifier rule matches on that field, with a count
// of rules per prefix. A single lookup per packet returns
//
//   * nbits  — how many leading bits of the field the generated megaflow must
//              match so that the set of matching prefixes is rendered unique
//              ("the number of bits ... to render its matching node unique"),
//   * plens  — a bit-set over prefix lengths; length L is set iff some rule
//              with an L-bit prefix lies on the packet's trie path. Tuples
//              whose mask uses an unset length cannot match and are skipped.
//
// Nodes are path-compressed: node.bits holds the whole (possibly multi-bit)
// edge label, exactly as in the paper's pseudocode.
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <memory>

namespace ovs {

// A big-endian bit string of up to 128 bits (bit 0 is the most significant
// bit of the value). Wide enough for IPv6 addresses.
class PrefixBits {
 public:
  static constexpr unsigned kMaxBits = 128;

  constexpr PrefixBits() noexcept = default;
  constexpr PrefixBits(uint64_t hi, uint64_t lo, unsigned len) noexcept
      : w_{hi, lo}, len_(len) {}

  static constexpr PrefixBits from_u32(uint32_t v, unsigned len = 32) noexcept {
    return PrefixBits(static_cast<uint64_t>(v) << 32, 0, len);
  }
  static constexpr PrefixBits from_u16(uint16_t v, unsigned len = 16) noexcept {
    return PrefixBits(static_cast<uint64_t>(v) << 48, 0, len);
  }
  static constexpr PrefixBits from_u128(uint64_t hi, uint64_t lo,
                                        unsigned len = 128) noexcept {
    return PrefixBits(hi, lo, len);
  }

  constexpr unsigned size() const noexcept { return len_; }
  constexpr bool empty() const noexcept { return len_ == 0; }

  constexpr bool bit(unsigned i) const noexcept {
    return ((w_[i >> 6] >> (63 - (i & 63))) & 1) != 0;
  }

  // First `n` bits of this string.
  PrefixBits prefix(unsigned n) const noexcept {
    PrefixBits r = *this;
    r.len_ = n;
    r.clear_tail();
    return r;
  }

  // Bits [from, size()).
  PrefixBits suffix(unsigned from) const noexcept {
    PrefixBits r;
    r.len_ = len_ - from;
    for (unsigned i = 0; i < r.len_; ++i) r.set_bit(i, bit(from + i));
    return r;
  }

  // Appends `other` to this string.
  void append(const PrefixBits& other) noexcept {
    for (unsigned i = 0; i < other.len_; ++i) set_bit(len_ + i, other.bit(i));
    len_ += other.len_;
  }

  // Length of the longest common prefix with `other` starting at our bit 0
  // and `other`'s bit `off`, limited to `max` bits.
  unsigned common_prefix(const PrefixBits& other, unsigned off,
                         unsigned max) const noexcept {
    unsigned n = 0;
    while (n < max && bit(n) == other.bit(off + n)) ++n;
    return n;
  }

  bool operator==(const PrefixBits& o) const noexcept {
    return len_ == o.len_ && w_ == o.w_;
  }

  uint64_t hi() const noexcept { return w_[0]; }
  uint64_t lo() const noexcept { return w_[1]; }

 private:
  void set_bit(unsigned i, bool v) noexcept {
    uint64_t m = 1ULL << (63 - (i & 63));
    if (v)
      w_[i >> 6] |= m;
    else
      w_[i >> 6] &= ~m;
  }
  void clear_tail() noexcept {  // zero bits at positions >= len_
    for (unsigned i = len_; i < kMaxBits; ++i) set_bit(i, false);
  }

  std::array<uint64_t, 2> w_{};
  unsigned len_ = 0;
};

class PrefixTrie {
 public:
  struct LookupResult {
    unsigned nbits = 0;  // leading bits the megaflow must match
    std::bitset<PrefixBits::kMaxBits + 1> plens;  // plens[L]: length L viable
  };

  PrefixTrie() = default;

  // Non-copyable (owns a node tree), movable.
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;
  PrefixTrie(PrefixTrie&&) = default;
  PrefixTrie& operator=(PrefixTrie&&) = default;

  bool empty() const noexcept { return n_prefixes_ == 0; }
  size_t prefix_count() const noexcept { return n_prefixes_; }

  // Adds one rule with the given prefix (duplicates are reference-counted).
  void insert(const PrefixBits& p);

  // Removes one rule with the given prefix. Returns false if absent.
  bool remove(const PrefixBits& p);

  // Figure 3 TRIESEARCH. `value` must be a full-width field value (e.g.
  // 32 bits for IPv4). Returns how many leading bits render the match unique
  // and which prefix lengths remain viable for this packet.
  LookupResult lookup(const PrefixBits& value) const noexcept;

 private:
  struct Node {
    PrefixBits bits;
    uint32_t n_rules = 0;
    std::unique_ptr<Node> child[2];

    bool has_child() const noexcept { return child[0] || child[1]; }
  };

  static bool remove_rec(std::unique_ptr<Node>& node, const PrefixBits& p,
                         unsigned i);
  static void maybe_collapse(std::unique_ptr<Node>& node);

  std::unique_ptr<Node> root_;
  size_t n_prefixes_ = 0;
};

}  // namespace ovs
