// Optimistic concurrent cuckoo hash map (paper §4.1: "Drawing inspiration
// from CuckooSwitch, we adopted optimistic concurrent cuckoo hashing and
// RCU techniques to implement nonblocking multiple-reader, single-writer
// flow tables").
//
// Semantics: one writer thread, any number of concurrent reader threads.
// Readers never block and never take locks; they validate optimistically:
//
//   * slots hold atomic key/value words, so reads are never torn;
//   * displacement ("kicking") and rehashing run under a seqlock version —
//     readers that race a displacement retry, so a key that is present
//     can never be missed because it was mid-flight between its two
//     candidate buckets.
//
// Keys and values are 64-bit words; key 0 is reserved as the empty marker
// (store hash(key) if your key space includes 0). This mirrors the kernel
// flow table use-case: key = flow hash, value = pointer/index.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/hash.h"

namespace ovs {

class CuckooMap64 {
 public:
  static constexpr size_t kSlotsPerBucket = 4;
  static constexpr uint64_t kEmpty = 0;

  explicit CuckooMap64(size_t initial_capacity = 256) {
    size_t buckets = 16;
    while (buckets * kSlotsPerBucket < initial_capacity * 2) buckets *= 2;
    n_slots_ = buckets * kSlotsPerBucket;
    table_ = std::make_unique<Slot[]>(n_slots_);
  }

  // Non-copyable (atomics), non-movable while concurrent readers exist.
  CuckooMap64(const CuckooMap64&) = delete;
  CuckooMap64& operator=(const CuckooMap64&) = delete;

  size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  size_t capacity() const noexcept { return n_slots_; }

  // --- Reader side (any thread, lock-free) --------------------------------

  bool find(uint64_t key, uint64_t* value_out) const noexcept {
    if (key == kEmpty) return false;  // reserved sentinel
    for (;;) {
      const uint32_t v1 = version_.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // writer is displacing; spin briefly
      if (find_once(key, value_out)) return true;
      const uint32_t v2 = version_.load(std::memory_order_acquire);
      if (v1 == v2) return false;  // stable miss
      // A displacement raced us: the key may have been mid-move. Retry.
    }
  }

  bool contains(uint64_t key) const noexcept {
    uint64_t v;
    return find(key, &v);
  }

  // --- Writer side (exactly one thread) ------------------------------------

  // Inserts or updates. Returns false only if the table failed to grow
  // (pathological; not expected in practice).
  bool insert(uint64_t key, uint64_t value) {
    if (key == kEmpty) return false;  // reserved sentinel
    if (Slot* s = find_slot(key)) {
      s->value.store(value, std::memory_order_release);
      return true;
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (insert_fresh(key, value)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      grow();
    }
    return false;
  }

  bool erase(uint64_t key) noexcept {
    if (key == kEmpty) return false;  // reserved sentinel
    Slot* s = find_slot(key);
    if (s == nullptr) return false;
    // Clear the key first so readers stop matching, then the value.
    s->key.store(kEmpty, std::memory_order_release);
    s->value.store(0, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  // Writer-side iteration (not safe concurrently with the writer itself).
  template <typename F>
  void for_each(F&& f) const {
    for (size_t i = 0; i < n_slots_; ++i) {
      const Slot& s = table_[i];
      const uint64_t k = s.key.load(std::memory_order_relaxed);
      if (k != kEmpty) f(k, s.value.load(std::memory_order_relaxed));
    }
  }

 private:
  struct Slot {
    std::atomic<uint64_t> key{kEmpty};
    std::atomic<uint64_t> value{0};
  };

  size_t n_buckets() const noexcept { return n_slots_ / kSlotsPerBucket; }
  size_t bucket1(uint64_t key) const noexcept {
    return hash_mix64(key) & (n_buckets() - 1);
  }
  size_t bucket2(uint64_t key) const noexcept {
    return hash_mix64(key ^ 0x5bd1e995bd1e995ULL) & (n_buckets() - 1);
  }

  bool find_once(uint64_t key, uint64_t* value_out) const noexcept {
    for (const size_t b : {bucket1(key), bucket2(key)}) {
      for (size_t i = 0; i < kSlotsPerBucket; ++i) {
        const Slot& s = table_[b * kSlotsPerBucket + i];
        if (s.key.load(std::memory_order_acquire) != key) continue;
        const uint64_t v = s.value.load(std::memory_order_acquire);
        // Revalidate: the slot may have been erased/reused between loads.
        if (s.key.load(std::memory_order_acquire) == key) {
          *value_out = v;
          return true;
        }
      }
    }
    return false;
  }

  Slot* find_slot(uint64_t key) noexcept {
    for (const size_t b : {bucket1(key), bucket2(key)}) {
      for (size_t i = 0; i < kSlotsPerBucket; ++i) {
        Slot& s = table_[b * kSlotsPerBucket + i];
        if (s.key.load(std::memory_order_relaxed) == key) return &s;
      }
    }
    return nullptr;
  }

  Slot* empty_slot(size_t bucket) noexcept {
    for (size_t i = 0; i < kSlotsPerBucket; ++i) {
      Slot& s = table_[bucket * kSlotsPerBucket + i];
      if (s.key.load(std::memory_order_relaxed) == kEmpty) return &s;
    }
    return nullptr;
  }

  void place(Slot* s, uint64_t key, uint64_t value) noexcept {
    // Value first, then key (release): a reader that sees the key sees a
    // fully initialized value.
    s->value.store(value, std::memory_order_relaxed);
    s->key.store(key, std::memory_order_release);
  }

  bool insert_fresh(uint64_t key, uint64_t value) {
    if (Slot* s = empty_slot(bucket1(key))) {
      place(s, key, value);
      return true;
    }
    if (Slot* s = empty_slot(bucket2(key))) {
      place(s, key, value);
      return true;
    }
    return kick_insert(key, value);
  }

  // Cuckoo displacement under the seqlock: evict a victim from one of the
  // candidate buckets and relocate it, repeating up to a bounded depth.
  bool kick_insert(uint64_t key, uint64_t value) {
    version_.fetch_add(1, std::memory_order_acq_rel);  // odd: in flux
    bool ok = false;
    uint64_t cur_key = key, cur_value = value;
    size_t bucket = bucket1(key);
    for (int depth = 0; depth < 64; ++depth) {
      if (Slot* s = empty_slot(bucket)) {
        place(s, cur_key, cur_value);
        ok = true;
        break;
      }
      // Evict a pseudo-random victim from this bucket.
      Slot& victim =
          table_[bucket * kSlotsPerBucket +
                 (hash_mix64(cur_key + depth) & (kSlotsPerBucket - 1))];
      const uint64_t vk = victim.key.load(std::memory_order_relaxed);
      const uint64_t vv = victim.value.load(std::memory_order_relaxed);
      place(&victim, cur_key, cur_value);
      cur_key = vk;
      cur_value = vv;
      // The victim goes to its *other* bucket.
      bucket = bucket1(cur_key) == bucket ? bucket2(cur_key)
                                          : bucket1(cur_key);
    }
    version_.fetch_add(1, std::memory_order_acq_rel);  // even: stable
    if (!ok) {
      // Kick path too long (a cuckoo cycle). The original key was placed
      // at the start of the chain; only the final displaced straggler is
      // homeless (it may BE the original key if the cycle wrapped). Grow
      // and re-insert it.
      grow();
      return insert_fresh(cur_key, cur_value);
    }
    return true;
  }

  void grow() {
    version_.fetch_add(1, std::memory_order_acq_rel);  // odd
    const size_t old_slots = n_slots_;
    std::unique_ptr<Slot[]> old = std::move(table_);
    n_slots_ = old_slots * 2;
    table_ = std::make_unique<Slot[]>(n_slots_);
    for (size_t i = 0; i < old_slots; ++i) {
      Slot& s = old[i];
      const uint64_t k = s.key.load(std::memory_order_relaxed);
      if (k == kEmpty) continue;
      const uint64_t v = s.value.load(std::memory_order_relaxed);
      // Place directly; the doubled table has room.
      Slot* dst = empty_slot(bucket1(k));
      if (dst == nullptr) dst = empty_slot(bucket2(k));
      if (dst == nullptr) {
        // Exceedingly unlikely double-collision: fall back to kicking
        // (we are already under the seqlock).
        uint64_t ck = k, cv = v;
        size_t bucket = bucket1(ck);
        for (int depth = 0; depth < 128; ++depth) {
          if (Slot* s2 = empty_slot(bucket)) {
            place(s2, ck, cv);
            ck = kEmpty;
            break;
          }
          Slot& victim = table_[bucket * kSlotsPerBucket +
                                (hash_mix64(ck + depth) &
                                 (kSlotsPerBucket - 1))];
          const uint64_t vk = victim.key.load(std::memory_order_relaxed);
          const uint64_t vv = victim.value.load(std::memory_order_relaxed);
          place(&victim, ck, cv);
          ck = vk;
          cv = vv;
          bucket = bucket1(ck) == bucket ? bucket2(ck) : bucket1(ck);
        }
      } else {
        place(dst, k, v);
      }
    }
    version_.fetch_add(1, std::memory_order_acq_rel);  // even
  }

  std::unique_ptr<Slot[]> table_;
  size_t n_slots_ = 0;
  std::atomic<uint32_t> version_{0};
  std::atomic<size_t> size_{0};
};

}  // namespace ovs
