// Optimistic concurrent cuckoo hash map (paper §4.1: "Drawing inspiration
// from CuckooSwitch, we adopted optimistic concurrent cuckoo hashing and
// RCU techniques to implement nonblocking multiple-reader, single-writer
// flow tables").
//
// Semantics: one writer thread, any number of concurrent reader threads.
// Readers never block and never take locks; they validate optimistically:
//
//   * slots hold atomic key/value words, so reads are never torn;
//   * displacement ("kicking") and rehashing run under a seqlock version —
//     readers that race a displacement retry, so a key that is present
//     can never be missed because it was mid-flight between its two
//     candidate buckets;
//   * growth publishes a brand-new slot array RCU-style: the old array is
//     *retired*, not freed, so a reader still probing it sees a frozen
//     pre-grow snapshot (its find linearizes at the table-pointer load).
//     The writer reclaims retired arrays with free_retired() once a grace
//     period has passed (or at destruction).
//
// Keys and values are 64-bit words; key 0 is reserved as the empty marker
// (store hash(key) if your key space includes 0). This mirrors the kernel
// flow table use-case: key = flow hash, value = pointer/index.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/hash.h"

namespace ovs {

class CuckooMap64 {
 public:
  static constexpr size_t kSlotsPerBucket = 4;
  static constexpr uint64_t kEmpty = 0;

  explicit CuckooMap64(size_t initial_capacity = 256) {
    size_t buckets = 16;
    while (buckets * kSlotsPerBucket < initial_capacity * 2) buckets *= 2;
    table_.store(new Table(buckets * kSlotsPerBucket),
                 std::memory_order_relaxed);
  }

  ~CuckooMap64() { delete table_.load(std::memory_order_relaxed); }

  // Non-copyable (atomics), non-movable while concurrent readers exist.
  CuckooMap64(const CuckooMap64&) = delete;
  CuckooMap64& operator=(const CuckooMap64&) = delete;

  size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  size_t capacity() const noexcept {
    return table_.load(std::memory_order_acquire)->n_slots;
  }

  // --- Reader side (any thread, lock-free) --------------------------------

  bool find(uint64_t key, uint64_t* value_out) const noexcept {
    if (key == kEmpty) return false;  // reserved sentinel
    for (;;) {
      const uint32_t v1 = version_.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // writer is displacing; spin briefly
      // One consistent (slots, n_slots) snapshot; a grow that races us swaps
      // the pointer but never frees or mutates the array we hold.
      const Table* t = table_.load(std::memory_order_acquire);
      const bool hit = find_once(*t, key, value_out);
      const uint32_t v2 = version_.load(std::memory_order_acquire);
      if (v1 == v2) return hit;  // no displacement raced the probe
      // A displacement raced us. A hit may have torn: place() overwrites a
      // kick victim value-first, so a slot transiently pairs the victim's
      // key with the incoming value. A miss may be a key mid-move. Retry.
    }
  }

  bool contains(uint64_t key) const noexcept {
    uint64_t v;
    return find(key, &v);
  }

  // --- Writer side (exactly one thread) ------------------------------------

  // Inserts or updates. Returns false only if the table failed to grow
  // (pathological; not expected in practice).
  bool insert(uint64_t key, uint64_t value) {
    if (key == kEmpty) return false;  // reserved sentinel
    if (Slot* s = find_slot(writer_table(), key)) {
      s->value.store(value, std::memory_order_release);
      return true;
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (insert_fresh(key, value)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      grow();
    }
    return false;
  }

  bool erase(uint64_t key) noexcept {
    if (key == kEmpty) return false;  // reserved sentinel
    Slot* s = find_slot(writer_table(), key);
    if (s == nullptr) return false;
    // Clear the key first so readers stop matching, then the value.
    s->key.store(kEmpty, std::memory_order_release);
    s->value.store(0, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  // Writer-side iteration (not safe concurrently with the writer itself).
  template <typename F>
  void for_each(F&& f) const {
    const Table& t = *table_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < t.n_slots; ++i) {
      const Slot& s = t.slots[i];
      const uint64_t k = s.key.load(std::memory_order_relaxed);
      if (k != kEmpty) f(k, s.value.load(std::memory_order_relaxed));
    }
  }

  // Frees slot arrays retired by grow(). Writer thread only, and only after
  // a grace period: no reader may still hold a pre-grow table pointer.
  void free_retired() noexcept { retired_.clear(); }
  size_t retired_tables() const noexcept { return retired_.size(); }

 private:
  struct Slot {
    std::atomic<uint64_t> key{kEmpty};
    std::atomic<uint64_t> value{0};
  };

  // A slot array plus its (immutable) size: readers grab both with a single
  // pointer load, so a racing grow can never hand them a mismatched pair.
  struct Table {
    explicit Table(size_t n) : slots(std::make_unique<Slot[]>(n)), n_slots(n) {}
    std::unique_ptr<Slot[]> slots;
    size_t n_slots;
  };

  Table& writer_table() noexcept {
    return *table_.load(std::memory_order_relaxed);
  }

  static size_t n_buckets(const Table& t) noexcept {
    return t.n_slots / kSlotsPerBucket;
  }
  static size_t bucket1(const Table& t, uint64_t key) noexcept {
    return hash_mix64(key) & (n_buckets(t) - 1);
  }
  static size_t bucket2(const Table& t, uint64_t key) noexcept {
    return hash_mix64(key ^ 0x5bd1e995bd1e995ULL) & (n_buckets(t) - 1);
  }

  static bool find_once(const Table& t, uint64_t key,
                        uint64_t* value_out) noexcept {
    for (const size_t b : {bucket1(t, key), bucket2(t, key)}) {
      for (size_t i = 0; i < kSlotsPerBucket; ++i) {
        const Slot& s = t.slots[b * kSlotsPerBucket + i];
        if (s.key.load(std::memory_order_acquire) != key) continue;
        const uint64_t v = s.value.load(std::memory_order_acquire);
        // Revalidate: the slot may have been erased/reused between loads.
        if (s.key.load(std::memory_order_acquire) == key) {
          *value_out = v;
          return true;
        }
      }
    }
    return false;
  }

  static Slot* find_slot(Table& t, uint64_t key) noexcept {
    for (const size_t b : {bucket1(t, key), bucket2(t, key)}) {
      for (size_t i = 0; i < kSlotsPerBucket; ++i) {
        Slot& s = t.slots[b * kSlotsPerBucket + i];
        if (s.key.load(std::memory_order_relaxed) == key) return &s;
      }
    }
    return nullptr;
  }

  static Slot* empty_slot(Table& t, size_t bucket) noexcept {
    for (size_t i = 0; i < kSlotsPerBucket; ++i) {
      Slot& s = t.slots[bucket * kSlotsPerBucket + i];
      if (s.key.load(std::memory_order_relaxed) == kEmpty) return &s;
    }
    return nullptr;
  }

  void place(Slot* s, uint64_t key, uint64_t value) noexcept {
    // Value first, then key (release): a reader that sees the key sees a
    // fully initialized value.
    s->value.store(value, std::memory_order_relaxed);
    s->key.store(key, std::memory_order_release);
  }

  bool insert_fresh(uint64_t key, uint64_t value) {
    Table& t = writer_table();
    if (Slot* s = empty_slot(t, bucket1(t, key))) {
      place(s, key, value);
      return true;
    }
    if (Slot* s = empty_slot(t, bucket2(t, key))) {
      place(s, key, value);
      return true;
    }
    return kick_insert(key, value);
  }

  // Cuckoo displacement under the seqlock: evict a victim from one of the
  // candidate buckets and relocate it, repeating up to a bounded depth.
  bool kick_insert(uint64_t key, uint64_t value) {
    Table& t = writer_table();
    version_.fetch_add(1, std::memory_order_acq_rel);  // odd: in flux
    bool ok = false;
    uint64_t cur_key = key, cur_value = value;
    size_t bucket = bucket1(t, key);
    for (int depth = 0; depth < 64; ++depth) {
      if (Slot* s = empty_slot(t, bucket)) {
        place(s, cur_key, cur_value);
        ok = true;
        break;
      }
      // Evict a pseudo-random victim from this bucket.
      Slot& victim =
          t.slots[bucket * kSlotsPerBucket +
                  (hash_mix64(cur_key + depth) & (kSlotsPerBucket - 1))];
      const uint64_t vk = victim.key.load(std::memory_order_relaxed);
      const uint64_t vv = victim.value.load(std::memory_order_relaxed);
      place(&victim, cur_key, cur_value);
      cur_key = vk;
      cur_value = vv;
      // The victim goes to its *other* bucket.
      bucket = bucket1(t, cur_key) == bucket ? bucket2(t, cur_key)
                                             : bucket1(t, cur_key);
    }
    version_.fetch_add(1, std::memory_order_acq_rel);  // even: stable
    if (!ok) {
      // Kick path too long (a cuckoo cycle). The original key was placed
      // at the start of the chain; only the final displaced straggler is
      // homeless (it may BE the original key if the cycle wrapped). Grow
      // and re-insert it.
      grow();
      return insert_fresh(cur_key, cur_value);
    }
    return true;
  }

  void grow() {
    Table* old = table_.load(std::memory_order_relaxed);
    Table* nt = new Table(old->n_slots * 2);
    version_.fetch_add(1, std::memory_order_acq_rel);  // odd
    for (size_t i = 0; i < old->n_slots; ++i) {
      Slot& s = old->slots[i];
      const uint64_t k = s.key.load(std::memory_order_relaxed);
      if (k == kEmpty) continue;
      const uint64_t v = s.value.load(std::memory_order_relaxed);
      // Place directly; the doubled table has room.
      Slot* dst = empty_slot(*nt, bucket1(*nt, k));
      if (dst == nullptr) dst = empty_slot(*nt, bucket2(*nt, k));
      if (dst == nullptr) {
        // Exceedingly unlikely double-collision: fall back to kicking
        // (the new table is not yet published, so this is private).
        uint64_t ck = k, cv = v;
        size_t bucket = bucket1(*nt, ck);
        for (int depth = 0; depth < 128; ++depth) {
          if (Slot* s2 = empty_slot(*nt, bucket)) {
            place(s2, ck, cv);
            ck = kEmpty;
            break;
          }
          Slot& victim = nt->slots[bucket * kSlotsPerBucket +
                                   (hash_mix64(ck + depth) &
                                    (kSlotsPerBucket - 1))];
          const uint64_t vk = victim.key.load(std::memory_order_relaxed);
          const uint64_t vv = victim.value.load(std::memory_order_relaxed);
          place(&victim, ck, cv);
          ck = vk;
          cv = vv;
          bucket = bucket1(*nt, ck) == bucket ? bucket2(*nt, ck)
                                              : bucket1(*nt, ck);
        }
      } else {
        place(dst, k, v);
      }
    }
    // RCU publication: swap the live table, retire (don't free) the old one
    // — a reader that loaded it before the swap may still be probing it.
    table_.store(nt, std::memory_order_release);
    retired_.emplace_back(old);
    version_.fetch_add(1, std::memory_order_acq_rel);  // even
  }

  std::atomic<Table*> table_{nullptr};
  std::vector<std::unique_ptr<Table>> retired_;  // writer-side, grace-gated
  std::atomic<uint32_t> version_{0};
  std::atomic<size_t> size_{0};
};

}  // namespace ovs
