// Deterministic random number generation for workloads and property tests.
//
// All randomness in the repository flows through these generators so that
// every test, example, and benchmark is reproducible from a single seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace ovs {

// xoshiro256** seeded via SplitMix64. Small, fast, and high quality; good
// enough for synthetic traffic generation and shuffles (not cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) noexcept {
    uint64_t x = seed;
    for (auto& w : s_) w = hash_mix64(x++);
  }

  uint64_t next() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 yields 0.
  uint64_t uniform(uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // slight bias for huge bounds is irrelevant for traffic synthesis.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) noexcept {
    return lo + uniform(hi - lo + 1);
  }

  double uniform_double() noexcept {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform_double() < p; }

  // Log-normal variate: exp(N(mu, sigma)). Used by the fleet simulator for
  // heavy-tailed per-hypervisor traffic parameters (paper §7.1).
  double lognormal(double mu, double sigma) noexcept {
    // Box-Muller.
    double u1 = uniform_double();
    double u2 = uniform_double();
    if (u1 <= 0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.141592653589793 * u2);
    return std::exp(mu + sigma * z);
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<uint64_t, 4> s_{};
};

// Zipf(s) sampler over {0, ..., n-1} using a precomputed CDF. Traffic flow
// popularity is famously Zipfian (paper §8.4 cites Sarrar et al.), so tenant
// workloads draw destination flows from this.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  size_t sample(Rng& rng) const noexcept {
    double u = rng.uniform_double();
    // Binary search for the first CDF entry >= u.
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ovs
