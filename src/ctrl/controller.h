// The controller: policy fan-out, barriers, failover state (DESIGN.md §12).
//
// One Controller object is one controller process. The active (master)
// instance owns the fleet's flow programs: push_policy() stamps a new policy
// epoch, appends one xid'd mod record per (agent, mod) to the per-agent
// history, fans the mods out over every connected session's reliable
// channel, and closes each fan-out with a barrier carrying the epoch. An
// agent's barrier reply certifies that every mod ordered before it was
// applied, so converged(epoch) — every agent's acked barrier >= epoch — is
// the fleet-wide "policy is live" predicate.
//
// Sessions are agent-initiated (hello), so a controller never needs to know
// who is up: after a controller crash the agents gossip their way to a
// standby (discovery.h), hello at it, and the standby replays its replicated
// history. Recovery and reconnection share one mechanism, the full resync:
//
//   sync_begin; replay history[agent] with ORIGINAL xids; barrier(epoch)
//
// Replay with original xids makes redelivery idempotent (the agent dedups),
// re-adds anything the agent lost, and the closing barrier has the agent
// prune rules the history no longer produces — which also rolls back any
// partial epoch a dead master managed to push beyond what it replicated.
//
// A connection reset (FaultPoint::kCtrlConnReset) loses every in-flight
// message on the session. The channel's on_reset hook queues a resync as the
// FIRST thing in the new connection epoch, so any message the caller was
// sending when the reset fired — a barrier, say — is sequenced after the
// replay of whatever was just lost: barrier certification survives resets.
//
// Stale-master fencing is OpenFlow 1.2-style: every hello/flow-mod/barrier
// is stamped with the controller's role_generation; agents reject anything
// below the highest generation they have seen, so a deposed master that is
// still alive can talk but cannot program.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/channel.h"
#include "ctrl/ctrl_msg.h"
#include "ctrl/discovery.h"
#include "ctrl/transport.h"

namespace ovs {

struct ControllerConfig {
  uint32_t id = 0;
  uint32_t priority = 1;
  ChannelConfig channel;
  // Consulted per session send for kCtrlConnReset (shared with the fleet's
  // wire injector by the harness).
  FaultInjector* fault = nullptr;
};

class Controller {
 public:
  Controller(CtrlTransport* net, ControllerConfig cfg);

  // The agent ids this controller is responsible for. Seeds the per-agent
  // history so policy pushed before an agent ever connects still reaches it
  // via resync.
  void set_fleet(const std::vector<uint32_t>& agents);

  // Registers the transport handler; messages flow after this.
  void attach(uint64_t now_ns);
  // Gossip addressed to us is handed to the discovery service (which also
  // carries our heartbeat while we are alive).
  void set_discovery(DiscoveryService* d) { disco_ = d; }
  // Process death: detaches from the wire and drops every session. In-flight
  // state is gone; standbys carry on from their replicated history.
  void crash(uint64_t now_ns);
  bool crashed() const { return crashed_; }

  // Become master with the given fencing generation (must exceed the dead
  // master's). Does not contact agents — they hello at us via discovery.
  void activate(uint64_t role_generation, uint64_t now_ns);
  bool active() const { return active_; }
  uint64_t role_generation() const { return role_generation_; }

  // Standby replication: copy the primary's history, epoch, xid and role
  // generation. Called by the harness on its replication schedule; anything
  // the primary pushes after the last call is lost with it (and rolled back
  // by resync after takeover).
  void replicate_from(const Controller& primary);

  // Fan out one policy change (a list of add/delete mods) to every agent.
  // Returns the new policy epoch. No-op returning 0 unless active.
  uint64_t push_policy(const std::vector<FlowModPayload>& mods,
                       uint64_t now_ns);

  // True when every fleet agent has acked a barrier at or beyond `epoch`.
  bool converged(uint64_t epoch) const;
  uint64_t policy_epoch() const { return policy_epoch_; }

  // Timer pump: per-session retransmits; a dead channel drops the session
  // (the agent re-hellos when it rediscovers us).
  void tick(uint64_t now_ns);

  uint32_t id() const { return cfg_.id; }
  uint32_t priority() const { return cfg_.priority; }
  size_t session_count() const { return sessions_.size(); }
  uint64_t barrier_acked(uint32_t agent) const;

  struct Stats {
    uint64_t flow_mods_sent = 0;  // incremental + resync replays
    uint64_t barriers_sent = 0;
    uint64_t barrier_replies = 0;
    uint64_t resyncs = 0;         // full resync streams queued
    uint64_t packet_ins = 0;
    uint64_t hellos = 0;
    uint64_t echoes = 0;
    uint64_t sessions_dropped = 0;  // channels declared dead
    uint64_t superseded_acks = 0;   // replies to barriers we since re-sent
  };
  const Stats& stats() const { return stats_; }

  // Aggregate channel-level stats across live sessions (retransmits etc.).
  CtrlChannel::Stats channel_totals() const;

 private:
  struct ModRecord {
    uint64_t xid;
    FlowModPayload mod;
  };
  struct Session {
    std::unique_ptr<CtrlChannel> channel;
    bool connected = false;       // hello seen / resync queued this epoch
    bool resync_pending = false;  // queue a resync at the next opportunity
    uint64_t barrier_acked = 0;   // highest policy epoch certified
    // xid of the most recent barrier sent. Only a reply to THIS barrier may
    // certify: a reply to a superseded barrier (an earlier resync whose
    // follow-up is still replaying) describes a state we have since told
    // the agent to rebuild.
    uint64_t last_barrier_xid = 0;
  };

  Session& session_for(uint32_t agent, uint64_t now_ns);
  void on_message(const CtrlMsg& m, uint64_t now_ns);
  void handle_app(uint32_t agent, Session& s, const CtrlMsg& m,
                  uint64_t now_ns);
  void send_resync(uint32_t agent, Session& s, uint64_t now_ns);
  CtrlMsg stamped(CtrlMsgType type) const;

  CtrlTransport* net_;
  ControllerConfig cfg_;
  DiscoveryService* disco_ = nullptr;
  bool attached_ = false;
  bool crashed_ = false;
  bool active_ = false;
  uint64_t role_generation_ = 0;
  uint64_t policy_epoch_ = 0;
  uint64_t next_xid_ = 1;
  std::vector<uint32_t> fleet_;
  std::map<uint32_t, std::vector<ModRecord>> history_;  // per-agent program
  std::map<uint32_t, Session> sessions_;
  Stats stats_;
};

}  // namespace ovs
