#include "ctrl/channel.h"

#include <algorithm>

#include "util/fault.h"

namespace ovs {

void CtrlChannel::do_reset(uint64_t now_ns, uint64_t new_epoch,
                           bool injected) {
  stats_.lost_to_reset += unacked_.size() + pending_.size();
  if (injected)
    ++stats_.resets;
  else if (new_epoch > epoch_ + 1 || !unacked_.empty() || !pending_.empty() ||
           expected_ != 1 || !ahead_.empty() || next_seq_ != 1)
    ++stats_.peer_resets;
  unacked_.clear();
  pending_.clear();
  ahead_.clear();
  next_seq_ = 1;
  expected_ = 1;
  epoch_ = new_epoch;
  dead_ = false;
  if (on_reset_) on_reset_(now_ns);
}

void CtrlChannel::reconnect(uint64_t now_ns) {
  // Same teardown as an injected reset, but initiated by the owner; the
  // peer adopts the new epoch on first contact.
  stats_.lost_to_reset += unacked_.size() + pending_.size();
  unacked_.clear();
  pending_.clear();
  ahead_.clear();
  next_seq_ = 1;
  expected_ = 1;
  ++epoch_;
  dead_ = false;
  (void)now_ns;
}

void CtrlChannel::transmit(const CtrlMsg& m, uint64_t now_ns) {
  net_->send(m, now_ns);
}

void CtrlChannel::pump(uint64_t now_ns) {
  while (!pending_.empty() && unacked_.size() < cfg_.window) {
    CtrlMsg m = std::move(pending_.front());
    pending_.pop_front();
    m.seq = next_seq_++;
    m.ack = expected_ - 1;
    m.conn_epoch = epoch_;
    ++stats_.sent;
    unacked_.push_back({m, now_ns + cfg_.rto_ns, 1});
    stats_.max_in_flight = std::max(stats_.max_in_flight, unacked_.size());
    transmit(m, now_ns);
  }
}

void CtrlChannel::send(CtrlMsg msg, uint64_t now_ns) {
  if (fault_ != nullptr &&
      fault_->should_fire(FaultPoint::kCtrlConnReset)) {
    // The connection dies under this send: everything in flight or queued
    // is lost; this message becomes the first of the new epoch.
    do_reset(now_ns, epoch_ + 1, /*injected=*/true);
  }
  msg.src = self_;
  msg.dst = peer_;
  pending_.push_back(std::move(msg));
  pump(now_ns);
}

void CtrlChannel::send_datagram(CtrlMsg msg, uint64_t now_ns) {
  msg.src = self_;
  msg.dst = peer_;
  msg.seq = 0;
  msg.ack = expected_ - 1;
  msg.conn_epoch = epoch_;
  transmit(msg, now_ns);
}

void CtrlChannel::process_ack(uint64_t ack, uint64_t now_ns) {
  while (!unacked_.empty() && unacked_.front().msg.seq <= ack)
    unacked_.pop_front();
  pump(now_ns);
}

void CtrlChannel::send_ack(uint64_t now_ns) {
  CtrlMsg a;
  a.type = CtrlMsgType::kAck;
  a.src = self_;
  a.dst = peer_;
  a.seq = 0;
  a.ack = expected_ - 1;
  a.conn_epoch = epoch_;
  transmit(a, now_ns);
}

void CtrlChannel::on_receive(const CtrlMsg& m, uint64_t now_ns,
                             std::vector<CtrlMsg>* out) {
  if (m.conn_epoch < epoch_) {
    // A straggler from before a reset: it was lost to that reset.
    ++stats_.stale_discarded;
    return;
  }
  if (m.conn_epoch > epoch_) {
    // The peer reset the connection; adopt its epoch and drop our own
    // stale state (our in-flight messages would be discarded over there).
    do_reset(now_ns, m.conn_epoch, /*injected=*/false);
  }

  process_ack(m.ack, now_ns);

  if (m.seq == 0) {
    if (m.type != CtrlMsgType::kAck) {
      ++stats_.delivered;
      out->push_back(m);
    }
    return;
  }

  if (m.seq < expected_) {
    // Duplicate (retransmission raced the ack, or a wire duplicate): the
    // peer clearly missed our ack — repeat it.
    ++stats_.dups_discarded;
    send_ack(now_ns);
    return;
  }
  if (m.seq > expected_) {
    if (ahead_.size() < cfg_.reorder_buffer) ahead_.emplace(m.seq, m);
    return;
  }
  // In order: deliver it and everything contiguous behind it.
  ++stats_.delivered;
  out->push_back(m);
  ++expected_;
  auto it = ahead_.begin();
  while (it != ahead_.end() && it->first == expected_) {
    ++stats_.delivered;
    out->push_back(std::move(it->second));
    it = ahead_.erase(it);
    ++expected_;
  }
  ahead_.erase(ahead_.begin(), ahead_.lower_bound(expected_));
  send_ack(now_ns);
}

void CtrlChannel::tick(uint64_t now_ns) {
  for (Unacked& u : unacked_) {
    if (u.next_retx_ns > now_ns) continue;
    if (u.attempts >= cfg_.max_retx) {
      dead_ = true;
      continue;
    }
    // Exponential backoff: rto doubles per attempt up to the cap.
    const uint64_t shift = std::min<uint64_t>(u.attempts, 32);
    uint64_t rto = cfg_.rto_ns;
    for (uint64_t i = 0; i < shift && rto < cfg_.rto_max_ns; ++i) rto *= 2;
    rto = std::min(rto, cfg_.rto_max_ns);
    ++u.attempts;
    ++stats_.retransmits;
    u.next_retx_ns = now_ns + rto;
    CtrlMsg copy = u.msg;
    copy.ack = expected_ - 1;  // piggyback the current cumulative ack
    transmit(copy, now_ns);
  }
  pump(now_ns);
}

}  // namespace ovs
