// Deterministic in-memory control-plane wire (DESIGN.md §12).
//
// The transport seam between controllers and switch agents: nodes attach a
// receive handler under an integer id, send() queues a message for delivery
// after the configured one-way latency, and deliver_until(now) dispatches
// everything due, in (deliver_at, enqueue order) — a virtual-time event
// loop, so every run is reproducible from its seeds.
//
// Robustness is injected, not emergent: each message consults a
// FaultInjector (util/fault.h) for the wire fault points —
//
//   kCtrlMsgDrop       the message vanishes;
//   kCtrlMsgDelay      delivery is postponed by delay_extra_ns;
//   kCtrlMsgDuplicate  a second copy lands half a latency later;
//
// (kCtrlConnReset and kControllerCrash are consulted at the channel and
// control-plane layers — they are not per-message events.) Injectors are
// per-node with a global fallback, so a fleet can arm rack-correlated wire
// faults on exactly the links of the faulted racks: a message is judged by
// the injector of its non-controller endpoint when one is set.
//
// A detached node (crashed controller) silently eats anything addressed to
// it — the sender finds out from its own timeouts, as on a real network.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ctrl/ctrl_msg.h"
#include "sim/clock.h"

namespace ovs {

class FaultInjector;

struct TransportConfig {
  uint64_t latency_ns = 50 * kMicrosecond;     // one-way wire latency
  uint64_t delay_extra_ns = 2 * kMillisecond;  // added by kCtrlMsgDelay
};

class CtrlTransport {
 public:
  using Handler = std::function<void(const CtrlMsg&, uint64_t now_ns)>;

  explicit CtrlTransport(TransportConfig cfg = {}) : cfg_(cfg) {}

  CtrlTransport(const CtrlTransport&) = delete;
  CtrlTransport& operator=(const CtrlTransport&) = delete;

  void attach(uint32_t node, Handler h) { nodes_[node] = std::move(h); }
  void detach(uint32_t node) { nodes_.erase(node); }
  bool attached(uint32_t node) const { return nodes_.count(node) != 0; }

  // Wire faults. The global injector applies to every message; a per-node
  // injector overrides it for messages whose src or dst is that node (the
  // dst-side injector wins when both endpoints have one — by convention the
  // fleet arms injectors on switch nodes only, so either direction of a
  // faulted link is judged by the same stream).
  void set_fault(FaultInjector* f) { global_fault_ = f; }
  void set_node_fault(uint32_t node, FaultInjector* f) {
    if (f == nullptr)
      node_faults_.erase(node);
    else
      node_faults_[node] = f;
  }

  // Queues one message; delivery happens at a later deliver_until(). The
  // src/dst must already be set by the caller.
  void send(CtrlMsg msg, uint64_t now_ns);

  // Dispatches every message due at or before now_ns. Handlers may send
  // more messages; anything they enqueue lands strictly later, so the loop
  // terminates. Returns the number of messages delivered.
  size_t deliver_until(uint64_t now_ns);

  // Earliest pending delivery time, or UINT64_MAX when idle.
  uint64_t next_deliver_ns() const {
    return pq_.empty() ? UINT64_MAX : pq_.top().deliver_at;
  }
  size_t pending() const { return pq_.size(); }

  struct Stats {
    uint64_t sent = 0;        // messages offered to the wire
    uint64_t delivered = 0;   // handler invocations
    uint64_t dropped = 0;     // eaten by kCtrlMsgDrop
    uint64_t delayed = 0;     // postponed by kCtrlMsgDelay
    uint64_t duplicated = 0;  // extra copies from kCtrlMsgDuplicate
    uint64_t to_dead = 0;     // arrived at a detached node
  };
  const Stats& stats() const { return stats_; }

 private:
  struct InFlight {
    uint64_t deliver_at;
    uint64_t order;  // FIFO tie-break for equal delivery times
    CtrlMsg msg;
    bool operator>(const InFlight& o) const {
      return deliver_at != o.deliver_at ? deliver_at > o.deliver_at
                                        : order > o.order;
    }
  };

  FaultInjector* fault_for(const CtrlMsg& m) const;

  TransportConfig cfg_;
  std::unordered_map<uint32_t, Handler> nodes_;
  std::unordered_map<uint32_t, FaultInjector*> node_faults_;
  FaultInjector* global_fault_ = nullptr;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> pq_;
  uint64_t order_ = 0;
  Stats stats_;
};

}  // namespace ovs
