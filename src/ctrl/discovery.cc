#include "ctrl/discovery.h"

#include <algorithm>

namespace ovs {

void DiscoveryService::add_node(uint32_t id) {
  Node n;
  n.rng = Rng(cfg_.seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)));
  nodes_.emplace(id, std::move(n));
}

void DiscoveryService::add_controller(uint32_t id, uint32_t priority) {
  add_node(id);
  Node& n = nodes_.at(id);
  n.is_controller = true;
  n.priority = priority;
}

void DiscoveryService::set_alive(uint32_t id, bool alive) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.alive = alive;
}

void DiscoveryService::add_link(uint32_t who, uint32_t whom) {
  if (who == whom) return;
  auto it = nodes_.find(who);
  if (it != nodes_.end()) it->second.known.insert(whom);
}

CtrlMsg DiscoveryService::make_digest(uint32_t self, const Node& n,
                                      bool want_reply) const {
  CtrlMsg m;
  m.type = CtrlMsgType::kGossip;
  m.xid = want_reply ? 1 : 0;
  m.gossip_round = round_;
  // Digest biased to the largest ids: those are the merge hubs (and the
  // controllers), so propagating them is what makes pointers double.
  m.gossip_peers.push_back(self);
  for (auto it = n.known.rbegin();
       it != n.known.rend() && m.gossip_peers.size() < cfg_.digest_cap; ++it)
    m.gossip_peers.push_back(*it);
  for (const auto& [id, beat] : n.beats) m.gossip_beats.push_back(beat);
  return m;
}

void DiscoveryService::merge(Node& n, const CtrlMsg& m) {
  n.known.insert(m.src);
  for (uint32_t id : m.gossip_peers) n.known.insert(id);
  for (const CtrlMsg::ControllerBeat& b : m.gossip_beats) {
    auto [it, inserted] = n.beats.emplace(b.id, b);
    if (!inserted && b.round > it->second.round) it->second = b;
  }
  // Evict from the small end: low ids are the least useful to remember —
  // pointers chase maxima.
  while (n.known.size() > cfg_.known_cap) n.known.erase(n.known.begin());
}

void DiscoveryService::run_round(uint64_t now_ns) {
  ++round_;
  for (auto& [id, n] : nodes_) {
    if (!n.alive) continue;
    if (n.is_controller)
      n.beats[id] = CtrlMsg::ControllerBeat{id, n.priority, round_};
    n.known.erase(id);
    if (n.known.empty()) continue;
    const uint32_t pointer = *n.known.rbegin();
    uint32_t expander = pointer;
    if (n.known.size() > 1) {
      // Uniform pick over the known set; colliding with the pointer just
      // means one message this round instead of two.
      auto it = n.known.begin();
      std::advance(it, static_cast<size_t>(n.rng.next() % n.known.size()));
      expander = *it;
    }
    CtrlMsg d = make_digest(id, n, /*want_reply=*/true);
    d.src = id;
    d.dst = pointer;
    ++gossip_sent_;
    net_->send(d, now_ns);
    if (expander != pointer) {
      d.dst = expander;
      ++gossip_sent_;
      net_->send(d, now_ns);
    }
  }
}

void DiscoveryService::on_gossip(uint32_t self, const CtrlMsg& m,
                                 uint64_t now_ns) {
  auto it = nodes_.find(self);
  if (it == nodes_.end() || !it->second.alive) return;
  Node& n = it->second;
  merge(n, m);
  n.known.erase(self);
  if (m.xid == 1) {
    CtrlMsg r = make_digest(self, n, /*want_reply=*/false);
    r.src = self;
    r.dst = m.src;
    ++gossip_sent_;
    net_->send(r, now_ns);
  }
}

uint32_t DiscoveryService::leader_of(uint32_t node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  const Node& n = it->second;
  uint32_t best = 0;
  uint32_t best_prio = 0;
  for (const auto& [id, beat] : n.beats) {
    if (round_ - beat.round > cfg_.beat_ttl_rounds) continue;  // stale
    if (best == 0 || beat.priority > best_prio ||
        (beat.priority == best_prio && id > best)) {
      best = id;
      best_prio = beat.priority;
    }
  }
  // A live controller always believes at least in itself.
  if (n.is_controller && n.alive &&
      (best == 0 || n.priority > best_prio ||
       (n.priority == best_prio && node > best)))
    best = node;
  return best;
}

bool DiscoveryService::converged(uint32_t leader) const {
  for (const auto& [id, n] : nodes_) {
    if (!n.alive) continue;
    if (leader_of(id) != leader) return false;
  }
  return true;
}

}  // namespace ovs
