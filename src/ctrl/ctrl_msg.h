// Controller<->switch wire vocabulary (DESIGN.md §12).
//
// An OpenFlow-ish control protocol, reduced to the messages the fault
// tolerance story needs:
//
//   * hello           — session setup after (re)connect; carries the
//                       controller's role generation for stale-master fencing
//   * echo req/reply  — liveness probes in both directions; an agent that
//                       misses enough replies declares the controller dead
//                       and enters fail-standalone
//   * flow_mod        — one add/delete in the ovs-ofctl text syntax
//                       (ofproto/flow_parser.h), stamped with a globally
//                       unique xid so redelivery after a reconnect is
//                       idempotent; sync_begin brackets a full-state resync
//   * barrier req/rep — fence: the reply certifies every flow_mod ordered
//                       before it on the channel has been applied
//   * packet_in       — the pipeline's controller action, forwarded upstream
//   * role req/reply  — master/slave claim, fenced by role_generation
//   * gossip          — discovery datagram (src/ctrl/discovery.h): the
//                       sender's peer digest plus controller heartbeats
//   * ack             — pure transport acknowledgement (channel.h)
//
// Messages are plain in-memory values; the "wire" is the deterministic
// lossy transport in src/ctrl/transport.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ovs {

enum class CtrlMsgType : uint8_t {
  kHello = 0,
  kEchoRequest,
  kEchoReply,
  kFlowMod,
  kBarrierRequest,
  kBarrierReply,
  kPacketIn,
  kRoleRequest,
  kRoleReply,
  kGossip,
  kAck,
};

inline const char* ctrl_msg_name(CtrlMsgType t) noexcept {
  switch (t) {
    case CtrlMsgType::kHello: return "hello";
    case CtrlMsgType::kEchoRequest: return "echo_request";
    case CtrlMsgType::kEchoReply: return "echo_reply";
    case CtrlMsgType::kFlowMod: return "flow_mod";
    case CtrlMsgType::kBarrierRequest: return "barrier_request";
    case CtrlMsgType::kBarrierReply: return "barrier_reply";
    case CtrlMsgType::kPacketIn: return "packet_in";
    case CtrlMsgType::kRoleRequest: return "role_request";
    case CtrlMsgType::kRoleReply: return "role_reply";
    case CtrlMsgType::kGossip: return "gossip";
    case CtrlMsgType::kAck: return "ack";
  }
  return "?";
}

enum class CtrlRole : uint8_t { kMaster, kSlave };

struct FlowModPayload {
  enum class Op : uint8_t {
    kAdd,        // spec in add_flow syntax
    kDelete,     // spec in del_flows (loose-match) syntax
    kSyncBegin,  // start of a full-state resync: adds that follow define the
                 // complete desired program; at the closing barrier the agent
                 // prunes any installed rule not re-sent, then forces a full
                 // revalidation pass (reconcile after failover)
  };
  Op op = Op::kAdd;
  std::string spec;
};

// One control message. Fields outside the common header are meaningful only
// for the types that use them; unused ones stay zero so fingerprints and
// dedup stay deterministic.
struct CtrlMsg {
  CtrlMsgType type = CtrlMsgType::kHello;
  uint32_t src = 0;
  uint32_t dst = 0;

  // Reliable-channel header (channel.h). seq == 0 marks an unsequenced
  // datagram (acks, echoes, gossip); data messages get seq >= 1 within a
  // connection epoch. ack is the cumulative receive high-water mark.
  uint64_t seq = 0;
  uint64_t ack = 0;
  uint64_t conn_epoch = 0;

  // Application header.
  uint64_t xid = 0;           // flow_mod / barrier / role transaction id
  uint64_t policy_epoch = 0;  // controller policy version being fanned out
  CtrlRole role = CtrlRole::kSlave;
  uint64_t role_generation = 0;  // stale-master fencing (OpenFlow 1.2-style)

  FlowModPayload flow_mod;

  // Discovery payload (discovery.h): the sender's bounded peer digest and
  // the controller heartbeats it has heard, by (id, priority, round).
  struct ControllerBeat {
    uint32_t id = 0;
    uint32_t priority = 0;
    uint64_t round = 0;  // gossip round the controller last asserted itself
  };
  std::vector<uint32_t> gossip_peers;
  std::vector<ControllerBeat> gossip_beats;
  uint64_t gossip_round = 0;
};

}  // namespace ovs
