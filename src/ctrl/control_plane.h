// Whole-control-plane harness (DESIGN.md §12): transport + discovery +
// controllers + per-switch agents, advanced in lockstep virtual time.
//
// The harness owns the composition and the clock, nothing else: protocol
// behavior lives in the parts. One step() is
//
//   deliver due wire messages -> gossip round (if due) -> takeover check
//   -> agent ticks -> controller ticks
//
// in deterministic order (ids ascending), so a run is a pure function of
// (config, seed, fault schedules).
//
// Takeover is belief-driven: a standby activates itself the moment
// discovery says it is the leader (the old master's heartbeats aged out),
// with fencing generation replicated_generation + 1. Nothing tells the
// agents — they follow their own leader belief, hello at the new master,
// and get resynced. The deposed master, if still alive, keeps its sessions
// but its generation no longer programs anything.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ctrl/controller.h"
#include "ctrl/discovery.h"
#include "ctrl/transport.h"
#include "util/rng.h"
#include "vswitchd/ctrl_agent.h"

namespace ovs {

class Switch;

struct ControlPlaneConfig {
  uint64_t seed = 1;
  size_t n_controllers = 2;  // 1 active + standbys
  TransportConfig transport;
  ChannelConfig channel;
  DiscoveryConfig discovery;
  uint64_t tick_ns = 10 * kMillisecond;            // control loop period
  uint64_t gossip_interval_ns = 20 * kMillisecond;  // discovery round pace
  uint64_t echo_interval_ns = 50 * kMillisecond;
  size_t echo_miss_limit = 4;
  // Initial knowledge edges per node (ring + this many random peers).
  size_t seed_links = 1;
  size_t controller_seed_links = 8;  // random agents each controller knows
  // Global wire/connection injector (kCtrlMsgDrop/Delay/Duplicate at the
  // transport, kCtrlConnReset at the channels). Per-node injectors go
  // through net().set_node_fault().
  FaultInjector* fault = nullptr;
  // Optional per-agent injectors (index = switch index; nullptr entries
  // fall back to `fault`). Entry i becomes both the transport's node
  // injector for agent i's links and agent i's channel (conn-reset)
  // injector — how the fleet arms rack-correlated wire faults.
  std::vector<FaultInjector*> agent_faults;
  // Copy the active's policy store to standbys before each push, so the
  // push in flight is exactly what a crash loses (realistic lag).
  bool replicate_before_push = true;
};

class ControlPlane {
 public:
  // One agent per switch; switches are borrowed, not owned. Node ids:
  // agent i -> i + 1, controller j -> n_switches + 1 + j (controllers get
  // the largest ids so discovery's max-chasing pointers converge to them).
  ControlPlane(const std::vector<Switch*>& switches, ControlPlaneConfig cfg);
  ~ControlPlane();

  uint32_t agent_id(size_t i) const { return static_cast<uint32_t>(i + 1); }
  uint32_t controller_id(size_t j) const {
    return static_cast<uint32_t>(n_switches_ + 1 + j);
  }

  // Attaches everyone, seeds discovery links, activates controller 0 with
  // generation 1.
  void start(uint64_t now_ns);

  void step();
  void run_until(uint64_t t_ns);
  // Steps until the active controller reports converged(epoch) or the
  // deadline passes; returns the convergence time, or UINT64_MAX.
  uint64_t run_until_converged(uint64_t epoch, uint64_t deadline_ns);

  // Fan a policy change out through the active controller (replicating to
  // standbys first per config). Returns the new policy epoch, 0 if no
  // active controller.
  uint64_t push_policy(const std::vector<FlowModPayload>& mods);
  bool policy_converged(uint64_t epoch) const;

  // Crash the active controller (detach + stop heartbeating). Failover
  // runs by itself: discovery ages it out, a standby takes over, agents
  // re-hello and resync.
  void kill_active();
  void replicate_standbys();

  Controller* active_controller();
  const Controller* active_controller() const;
  Controller& controller(size_t j) { return *controllers_[j]; }
  CtrlAgent& agent(size_t i) { return *agents_[i]; }
  size_t n_agents() const { return agents_.size(); }
  size_t n_controllers() const { return controllers_.size(); }
  CtrlTransport& net() { return net_; }
  DiscoveryService& discovery() { return disco_; }
  uint64_t now() const { return now_; }

  // Aggregates for gates: channel stats summed over every agent.
  CtrlChannel::Stats agent_channel_totals() const;
  CtrlAgent::Stats agent_stat_totals() const;

 private:
  size_t n_switches_;
  ControlPlaneConfig cfg_;
  CtrlTransport net_;
  DiscoveryService disco_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<std::unique_ptr<CtrlAgent>> agents_;
  uint64_t now_ = 0;
  uint64_t next_gossip_ns_ = 0;
  // Takeover arming, per controller: a live controller's leader belief
  // defaults to itself before gossip spreads, so a standby may only
  // self-activate after it has believed in a FOREIGN master and watched
  // that belief age out (otherwise every standby would seize mastership at
  // boot, before ever hearing the real master's heartbeat).
  std::vector<char> saw_foreign_leader_;
};

}  // namespace ovs
