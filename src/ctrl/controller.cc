#include "ctrl/controller.h"

#include <algorithm>

namespace ovs {

Controller::Controller(CtrlTransport* net, ControllerConfig cfg)
    : net_(net), cfg_(cfg) {}

void Controller::set_fleet(const std::vector<uint32_t>& agents) {
  fleet_ = agents;
  for (uint32_t a : fleet_) history_[a];  // seed empty programs
}

void Controller::attach(uint64_t now_ns) {
  attached_ = true;
  crashed_ = false;
  net_->attach(cfg_.id, [this](const CtrlMsg& m, uint64_t now) {
    on_message(m, now);
  });
  (void)now_ns;
}

void Controller::crash(uint64_t now_ns) {
  crashed_ = true;
  attached_ = false;
  active_ = false;
  net_->detach(cfg_.id);
  sessions_.clear();
  (void)now_ns;
}

void Controller::activate(uint64_t role_generation, uint64_t now_ns) {
  active_ = true;
  role_generation_ = std::max(role_generation_ + 1, role_generation);
  if (!attached_) attach(now_ns);
  // Agents that hello'd while we were standby are connected but were never
  // programmed (a standby answers hellos without resyncing); bring them up
  // to the replicated history now that we own the fleet.
  for (auto& [agent, s] : sessions_)
    if (s.connected) send_resync(agent, s, now_ns);
}

void Controller::replicate_from(const Controller& primary) {
  history_ = primary.history_;
  fleet_ = primary.fleet_;
  policy_epoch_ = primary.policy_epoch_;
  next_xid_ = primary.next_xid_;
  role_generation_ = std::max(role_generation_, primary.role_generation_);
}

CtrlMsg Controller::stamped(CtrlMsgType type) const {
  CtrlMsg m;
  m.type = type;
  m.role = active_ ? CtrlRole::kMaster : CtrlRole::kSlave;
  m.role_generation = role_generation_;
  m.policy_epoch = policy_epoch_;
  return m;
}

Controller::Session& Controller::session_for(uint32_t agent,
                                             uint64_t now_ns) {
  auto it = sessions_.find(agent);
  if (it != sessions_.end()) return it->second;
  Session& s = sessions_[agent];
  s.channel = std::make_unique<CtrlChannel>(net_, cfg_.id, agent,
                                            cfg_.channel, cfg_.fault);
  // A reset (injected here or adopted from the agent) loses in-flight
  // mods; queue the resync FIRST in the new epoch so anything the caller
  // was about to send is sequenced after the replay of what was lost.
  s.channel->set_on_reset([this, agent](uint64_t now) {
    auto sit = sessions_.find(agent);
    if (sit == sessions_.end()) return;
    if (active_ && sit->second.connected) {
      send_resync(agent, sit->second, now);
    } else {
      // Can't resync yet — but the session is known-disrupted, so its old
      // barrier ack no longer certifies anything.
      sit->second.resync_pending = true;
      sit->second.barrier_acked = 0;
    }
  });
  (void)now_ns;
  return s;
}

void Controller::send_resync(uint32_t agent, Session& s, uint64_t now_ns) {
  ++stats_.resyncs;
  // A resync means the agent's state is suspect (reconnect, reset, or
  // takeover); un-certify it until the sync barrier — stamped with the
  // current policy epoch — is acked. Without this an agent that acked an
  // epoch, then lost half a resync replay to a reset, would still count as
  // converged while its tables are mid-rebuild.
  s.barrier_acked = 0;
  CtrlMsg begin = stamped(CtrlMsgType::kFlowMod);
  begin.xid = next_xid_++;
  begin.flow_mod.op = FlowModPayload::Op::kSyncBegin;
  s.channel->send(std::move(begin), now_ns);
  for (const ModRecord& rec : history_[agent]) {
    CtrlMsg m = stamped(CtrlMsgType::kFlowMod);
    m.xid = rec.xid;  // original xid: redelivery is idempotent at the agent
    m.flow_mod = rec.mod;
    ++stats_.flow_mods_sent;
    s.channel->send(std::move(m), now_ns);
  }
  CtrlMsg b = stamped(CtrlMsgType::kBarrierRequest);
  b.xid = next_xid_++;
  s.last_barrier_xid = b.xid;
  ++stats_.barriers_sent;
  s.channel->send(std::move(b), now_ns);
  s.connected = true;
  s.resync_pending = false;
}

uint64_t Controller::push_policy(const std::vector<FlowModPayload>& mods,
                                 uint64_t now_ns) {
  if (!active_ || crashed_) return 0;
  ++policy_epoch_;
  for (uint32_t agent : fleet_) {
    std::vector<ModRecord>& hist = history_[agent];
    auto sit = sessions_.find(agent);
    Session* s = (sit != sessions_.end() && sit->second.connected)
                     ? &sit->second
                     : nullptr;
    for (const FlowModPayload& mod : mods) {
      const uint64_t xid = next_xid_++;
      hist.push_back({xid, mod});
      if (s != nullptr) {
        CtrlMsg m = stamped(CtrlMsgType::kFlowMod);
        m.xid = xid;
        m.flow_mod = mod;
        ++stats_.flow_mods_sent;
        s->channel->send(std::move(m), now_ns);
      }
    }
    if (s != nullptr) {
      CtrlMsg b = stamped(CtrlMsgType::kBarrierRequest);
      b.xid = next_xid_++;
      s->last_barrier_xid = b.xid;
      ++stats_.barriers_sent;
      s->channel->send(std::move(b), now_ns);
    }
    // Disconnected agents pick the whole epoch up from the resync that
    // runs when they hello back in.
  }
  return policy_epoch_;
}

bool Controller::converged(uint64_t epoch) const {
  for (uint32_t agent : fleet_) {
    auto it = sessions_.find(agent);
    if (it == sessions_.end() || it->second.barrier_acked < epoch)
      return false;
  }
  return true;
}

uint64_t Controller::barrier_acked(uint32_t agent) const {
  auto it = sessions_.find(agent);
  return it == sessions_.end() ? 0 : it->second.barrier_acked;
}

void Controller::on_message(const CtrlMsg& m, uint64_t now_ns) {
  if (crashed_) return;
  if (m.type == CtrlMsgType::kGossip) {
    if (disco_ != nullptr) disco_->on_gossip(cfg_.id, m, now_ns);
    return;
  }
  Session& s = session_for(m.src, now_ns);
  std::vector<CtrlMsg> out;
  s.channel->on_receive(m, now_ns, &out);
  for (const CtrlMsg& app : out) handle_app(m.src, s, app, now_ns);
  if (s.resync_pending && active_ && s.connected)
    send_resync(m.src, s, now_ns);
}

void Controller::handle_app(uint32_t agent, Session& s, const CtrlMsg& m,
                            uint64_t now_ns) {
  switch (m.type) {
    case CtrlMsgType::kHello: {
      ++stats_.hellos;
      s.connected = true;
      CtrlMsg h = stamped(CtrlMsgType::kHello);
      h.xid = m.xid;
      s.channel->send(std::move(h), now_ns);
      if (active_) send_resync(agent, s, now_ns);
      break;
    }
    case CtrlMsgType::kEchoRequest: {
      ++stats_.echoes;
      CtrlMsg e = stamped(CtrlMsgType::kEchoReply);
      e.xid = m.xid;
      s.channel->send_datagram(std::move(e), now_ns);
      break;
    }
    case CtrlMsgType::kBarrierReply: {
      ++stats_.barrier_replies;
      // Only the reply to the newest barrier certifies. An older reply is
      // truthful about the past, but when two resyncs were queued back to
      // back (reset + pending, say) the first one's ack can land while the
      // second's replay — transiently destructive — is still in flight;
      // counting it would certify convergence mid-rebuild.
      if (m.xid == s.last_barrier_xid)
        s.barrier_acked = std::max(s.barrier_acked, m.policy_epoch);
      else
        ++stats_.superseded_acks;
      break;
    }
    case CtrlMsgType::kPacketIn:
      ++stats_.packet_ins;
      break;
    case CtrlMsgType::kRoleRequest: {
      CtrlMsg r = stamped(CtrlMsgType::kRoleReply);
      r.xid = m.xid;
      s.channel->send(std::move(r), now_ns);
      break;
    }
    default:
      break;
  }
}

void Controller::tick(uint64_t now_ns) {
  if (crashed_) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    it->second.channel->tick(now_ns);
    if (it->second.channel->dead()) {
      // The agent stopped acking: assume it is gone. It re-hellos (and we
      // resync) if it comes back.
      ++stats_.sessions_dropped;
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

CtrlChannel::Stats Controller::channel_totals() const {
  CtrlChannel::Stats t;
  for (const auto& [id, s] : sessions_) {
    const CtrlChannel::Stats& c = s.channel->stats();
    t.sent += c.sent;
    t.retransmits += c.retransmits;
    t.delivered += c.delivered;
    t.dups_discarded += c.dups_discarded;
    t.stale_discarded += c.stale_discarded;
    t.resets += c.resets;
    t.peer_resets += c.peer_resets;
    t.lost_to_reset += c.lost_to_reset;
    t.max_in_flight = std::max(t.max_in_flight, c.max_in_flight);
  }
  return t;
}

}  // namespace ovs
