#include "ctrl/transport.h"

#include "util/fault.h"

namespace ovs {

FaultInjector* CtrlTransport::fault_for(const CtrlMsg& m) const {
  auto it = node_faults_.find(m.dst);
  if (it != node_faults_.end()) return it->second;
  it = node_faults_.find(m.src);
  if (it != node_faults_.end()) return it->second;
  return global_fault_;
}

void CtrlTransport::send(CtrlMsg msg, uint64_t now_ns) {
  ++stats_.sent;
  FaultInjector* f = fault_for(msg);
  if (f != nullptr && f->should_fire(FaultPoint::kCtrlMsgDrop)) {
    ++stats_.dropped;
    return;
  }
  uint64_t deliver_at = now_ns + cfg_.latency_ns;
  if (f != nullptr && f->should_fire(FaultPoint::kCtrlMsgDelay)) {
    deliver_at += cfg_.delay_extra_ns;
    ++stats_.delayed;
  }
  const bool dup =
      f != nullptr && f->should_fire(FaultPoint::kCtrlMsgDuplicate);
  if (dup) {
    // The duplicate trails the original by half a latency — close enough to
    // land inside the same handler round, late enough to arrive second.
    ++stats_.duplicated;
    pq_.push({deliver_at + cfg_.latency_ns / 2, order_++, msg});
  }
  pq_.push({deliver_at, order_++, std::move(msg)});
}

size_t CtrlTransport::deliver_until(uint64_t now_ns) {
  size_t n = 0;
  while (!pq_.empty() && pq_.top().deliver_at <= now_ns) {
    InFlight f = pq_.top();
    pq_.pop();
    auto it = nodes_.find(f.msg.dst);
    if (it == nodes_.end()) {
      ++stats_.to_dead;
      continue;
    }
    ++stats_.delivered;
    ++n;
    // The handler may detach nodes or send more messages; take a copy of
    // the callable so re-attachment mid-dispatch stays safe.
    Handler h = it->second;
    h(f.msg, f.deliver_at);
  }
  return n;
}

}  // namespace ovs
