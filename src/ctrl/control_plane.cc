#include "ctrl/control_plane.h"

#include <algorithm>

#include "vswitchd/switch.h"

namespace ovs {

ControlPlane::ControlPlane(const std::vector<Switch*>& switches,
                           ControlPlaneConfig cfg)
    : n_switches_(switches.size()),
      cfg_(cfg),
      net_(cfg.transport),
      disco_(&net_, cfg.discovery) {
  if (cfg_.fault != nullptr) net_.set_fault(cfg_.fault);
  std::vector<uint32_t> fleet;
  fleet.reserve(n_switches_);
  for (size_t i = 0; i < n_switches_; ++i) fleet.push_back(agent_id(i));

  for (size_t j = 0; j < cfg_.n_controllers; ++j) {
    ControllerConfig cc;
    cc.id = controller_id(j);
    // Controller 0 is the preferred master; standbys take over in order.
    cc.priority = static_cast<uint32_t>(cfg_.n_controllers - j);
    cc.channel = cfg_.channel;
    cc.fault = cfg_.fault;
    auto c = std::make_unique<Controller>(&net_, cc);
    c->set_fleet(fleet);
    c->set_discovery(&disco_);
    controllers_.push_back(std::move(c));
  }

  for (size_t i = 0; i < n_switches_; ++i) {
    CtrlAgentConfig ac;
    ac.id = agent_id(i);
    ac.channel = cfg_.channel;
    ac.fault = (i < cfg_.agent_faults.size() && cfg_.agent_faults[i])
                   ? cfg_.agent_faults[i]
                   : cfg_.fault;
    ac.echo_interval_ns = cfg_.echo_interval_ns;
    ac.echo_miss_limit = cfg_.echo_miss_limit;
    auto a = std::make_unique<CtrlAgent>(&net_, switches[i], ac);
    a->set_discovery(&disco_);
    agents_.push_back(std::move(a));
  }
}

ControlPlane::~ControlPlane() = default;

void ControlPlane::start(uint64_t now_ns) {
  now_ = now_ns;
  next_gossip_ns_ = now_ns;
  saw_foreign_leader_.assign(controllers_.size(), 0);

  // Discovery membership + the initial knowledge graph: agents in a ring
  // with a few random chords (nobody starts knowing a controller — finding
  // one IS the protocol); controllers know each other and a few random
  // agents, which is how their heartbeats first leak into the agent graph.
  Rng rng(cfg_.seed ^ 0xC0117201);
  for (size_t i = 0; i < n_switches_; ++i) disco_.add_node(agent_id(i));
  for (size_t j = 0; j < controllers_.size(); ++j)
    disco_.add_controller(controller_id(j), controllers_[j]->priority());
  for (size_t i = 0; i < n_switches_; ++i) {
    disco_.add_link(agent_id(i), agent_id((i + 1) % n_switches_));
    for (size_t k = 0; k < cfg_.seed_links; ++k)
      disco_.add_link(agent_id(i),
                      agent_id(static_cast<size_t>(rng.next() % n_switches_)));
  }
  for (size_t j = 0; j < controllers_.size(); ++j) {
    for (size_t j2 = 0; j2 < controllers_.size(); ++j2)
      if (j2 != j) disco_.add_link(controller_id(j), controller_id(j2));
    for (size_t k = 0; k < cfg_.controller_seed_links && n_switches_ > 0; ++k)
      disco_.add_link(controller_id(j),
                      agent_id(static_cast<size_t>(rng.next() % n_switches_)));
  }

  for (size_t i = 0; i < cfg_.agent_faults.size() && i < n_switches_; ++i)
    if (cfg_.agent_faults[i] != nullptr)
      net_.set_node_fault(agent_id(i), cfg_.agent_faults[i]);
  for (auto& c : controllers_) c->attach(now_ns);
  for (auto& a : agents_) a->attach(now_ns);
  controllers_[0]->activate(/*role_generation=*/1, now_ns);
}

void ControlPlane::step() {
  now_ += cfg_.tick_ns;
  net_.deliver_until(now_);
  if (now_ >= next_gossip_ns_) {
    disco_.run_round(now_);
    next_gossip_ns_ = now_ + cfg_.gossip_interval_ns;
  }
  // Takeover: a standby whose belief in a foreign master has aged out —
  // discovery now says the standby itself is the leader — activates
  // itself, fenced one generation above what was replicated. The
  // saw_foreign_leader_ arming keeps a freshly booted standby (whose
  // belief defaults to itself until gossip delivers the master's
  // heartbeat) from seizing mastership it was never ceded.
  for (size_t j = 0; j < controllers_.size(); ++j) {
    Controller& c = *controllers_[j];
    if (c.crashed() || c.active()) continue;
    const uint32_t belief = disco_.leader_of(c.id());
    if (belief != c.id())
      saw_foreign_leader_[j] = 1;
    else if (saw_foreign_leader_[j])
      c.activate(c.role_generation() + 1, now_);
  }
  for (auto& a : agents_) a->tick(now_);
  for (auto& c : controllers_) c->tick(now_);
}

void ControlPlane::run_until(uint64_t t_ns) {
  while (now_ < t_ns) step();
}

uint64_t ControlPlane::run_until_converged(uint64_t epoch,
                                           uint64_t deadline_ns) {
  if (policy_converged(epoch)) return now_;
  while (now_ < deadline_ns) {
    step();
    if (policy_converged(epoch)) return now_;
  }
  return UINT64_MAX;
}

uint64_t ControlPlane::push_policy(const std::vector<FlowModPayload>& mods) {
  Controller* a = active_controller();
  if (a == nullptr) return 0;
  if (cfg_.replicate_before_push) replicate_standbys();
  return a->push_policy(mods, now_);
}

bool ControlPlane::policy_converged(uint64_t epoch) const {
  const Controller* a = active_controller();
  return a != nullptr && a->converged(epoch);
}

void ControlPlane::kill_active() {
  Controller* a = active_controller();
  if (a == nullptr) return;
  a->crash(now_);
  disco_.set_alive(a->id(), false);
}

void ControlPlane::replicate_standbys() {
  Controller* a = active_controller();
  if (a == nullptr) return;
  for (auto& c : controllers_)
    if (c.get() != a && !c->crashed()) c->replicate_from(*a);
}

Controller* ControlPlane::active_controller() {
  Controller* best = nullptr;
  for (auto& c : controllers_) {
    if (c->crashed() || !c->active()) continue;
    if (best == nullptr || c->role_generation() > best->role_generation())
      best = c.get();
  }
  return best;
}

const Controller* ControlPlane::active_controller() const {
  return const_cast<ControlPlane*>(this)->active_controller();
}

CtrlChannel::Stats ControlPlane::agent_channel_totals() const {
  CtrlChannel::Stats t;
  for (const auto& a : agents_) {
    const CtrlChannel::Stats& c = a->channel().stats();
    t.sent += c.sent;
    t.retransmits += c.retransmits;
    t.delivered += c.delivered;
    t.dups_discarded += c.dups_discarded;
    t.stale_discarded += c.stale_discarded;
    t.resets += c.resets;
    t.peer_resets += c.peer_resets;
    t.lost_to_reset += c.lost_to_reset;
    t.max_in_flight = std::max(t.max_in_flight, c.max_in_flight);
  }
  return t;
}

CtrlAgent::Stats ControlPlane::agent_stat_totals() const {
  CtrlAgent::Stats t;
  for (const auto& a : agents_) {
    const CtrlAgent::Stats& s = a->stats();
    t.flow_mods_applied += s.flow_mods_applied;
    t.mod_errors += s.mod_errors;
    t.dups_ignored += s.dups_ignored;
    t.stale_gen_fenced += s.stale_gen_fenced;
    t.foreign_dropped += s.foreign_dropped;
    t.barriers_replied += s.barriers_replied;
    t.syncs_completed += s.syncs_completed;
    t.rules_pruned += s.rules_pruned;
    t.echo_misses += s.echo_misses;
    t.standalone_entries += s.standalone_entries;
    t.connects += s.connects;
    t.packet_ins_sent += s.packet_ins_sent;
  }
  return t;
}

}  // namespace ovs
