// Sub-logarithmic controller discovery (DESIGN.md §12).
//
// After the active controller dies, a fleet of N agents must locate a live
// standby without scanning a static list. We run a gossip/pointer-doubling
// scheme in the spirit of Haeupler–Malkhi's sub-logarithmic resource
// discovery (PODC 2015): every node keeps a bounded *digest* of peer ids it
// knows, and each synchronous round
//
//   1. sends its digest to the LARGEST node it knows (its pointer) and to
//      one pseudo-random known peer (the expander edge), and
//   2. every contacted node merges what it received and replies with its
//      own merged digest (push-pull).
//
// Large-id nodes act as merge hubs: a hub absorbs the digests of everyone
// pointing at it and hands the union back, so the sets of a whole "star"
// merge in one round and stars then merge by their maxima — knowledge grows
// multiplicatively rather than additively, and all-to-all discovery
// converges in far fewer than log2(N) rounds (EXPERIMENTS.md measures 5-7
// rounds for N = 64-4096 from a ring + random-edge start, vs. log2(N) of
// 6-12 — the growth with N is nearly flat). Controllers are
// assigned the largest ids, so the pointer chase converges exactly toward
// the nodes worth discovering.
//
// Liveness rides on the same messages: each controller stamps a heartbeat
// (id, priority, round) into every digest it emits; a node believes the
// highest-priority controller whose heartbeat is at most beat_ttl_rounds
// old. A dead controller stops refreshing, its entries age out, and the
// fleet's belief moves to the best live standby — the election is implicit
// in the gossip.
//
// Gossip datagrams travel over the same lossy CtrlTransport as everything
// else, so wire faults (drop/delay/duplicate) slow discovery instead of
// being invisible to it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ctrl/ctrl_msg.h"
#include "ctrl/transport.h"
#include "util/rng.h"

namespace ovs {

struct DiscoveryConfig {
  uint64_t seed = 0xD15C;
  size_t digest_cap = 64;        // max peer ids per gossip message
  size_t known_cap = 128;        // max peer ids retained per node
  uint64_t beat_ttl_rounds = 6;  // heartbeat freshness window
};

class DiscoveryService {
 public:
  explicit DiscoveryService(CtrlTransport* net, DiscoveryConfig cfg = {})
      : net_(net), cfg_(cfg) {}

  // Membership. Controllers participate in gossip like everyone else but
  // additionally assert a heartbeat each round while alive.
  void add_node(uint32_t id);
  void add_controller(uint32_t id, uint32_t priority);
  // Dead nodes neither send nor merge; a dead controller stops beating.
  void set_alive(uint32_t id, bool alive);
  // Initial knowledge edge: `who` starts out knowing `whom`.
  void add_link(uint32_t who, uint32_t whom);

  // One synchronous gossip round: queues this round's requests on the
  // transport. The caller then advances virtual time and calls
  // net->deliver_until() far enough for the request and reply waves to
  // land (2x wire latency covers both).
  void run_round(uint64_t now_ns);

  // Wire-in: the owner routes kGossip messages addressed to `self` here.
  void on_gossip(uint32_t self, const CtrlMsg& m, uint64_t now_ns);

  // Current belief of `node`: the live controller with the highest
  // (priority, id) among fresh heartbeats; 0 = none known.
  uint32_t leader_of(uint32_t node) const;
  // True when every live node believes `leader`.
  bool converged(uint32_t leader) const;

  uint64_t round() const { return round_; }
  uint64_t gossip_sent() const { return gossip_sent_; }

 private:
  struct Node {
    bool alive = true;
    bool is_controller = false;
    uint32_t priority = 0;
    std::set<uint32_t> known;  // ordered: *known.rbegin() is the pointer
    // Freshest heartbeat heard per controller id.
    std::map<uint32_t, CtrlMsg::ControllerBeat> beats;
    Rng rng{0};
  };

  void merge(Node& n, const CtrlMsg& m);
  CtrlMsg make_digest(uint32_t self, const Node& n, bool want_reply) const;

  CtrlTransport* net_;
  DiscoveryConfig cfg_;
  std::map<uint32_t, Node> nodes_;  // ordered for deterministic iteration
  uint64_t round_ = 0;
  uint64_t gossip_sent_ = 0;
};

}  // namespace ovs
