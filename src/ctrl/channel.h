// Reliable, ordered control channel over the lossy wire (DESIGN.md §12).
//
// One CtrlChannel is one endpoint of a controller<->switch connection. Data
// messages get per-connection sequence numbers and are delivered to the
// application exactly once, in order, within a connection epoch:
//
//   * bounded in-flight window — at most cfg.window unacked messages on the
//     wire; excess sends queue and drain as cumulative acks arrive;
//   * retransmission — tick(now) re-sends overdue unacked messages with
//     exponential backoff (rto_ns doubling per attempt up to rto_max_ns);
//     a message exceeding max_retx marks the channel dead, which the owner
//     maps to "peer is gone" (controller loss / switch loss);
//   * dedup + reorder — the receiver buffers ahead-of-sequence arrivals up
//     to a window and discards duplicates (redelivered or wire-duplicated),
//     re-acking so the sender stops;
//   * connection resets — each send consults FaultPoint::kCtrlConnReset;
//     a firing tears the connection down mid-stream: every in-flight and
//     queued message is LOST (not resent by the channel), the epoch bumps,
//     and the on_reset callback tells the owner to re-handshake and
//     redeliver at the application layer (idempotent flow-mod xids make
//     that safe). The peer adopts the new epoch on first contact and drops
//     everything stale, firing its own on_reset.
//
// Unsequenced datagrams (seq == 0: echo, gossip, pure acks) bypass all of
// the above — liveness probes must not be masked by retransmission.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "ctrl/ctrl_msg.h"
#include "ctrl/transport.h"

namespace ovs {

class FaultInjector;

struct ChannelConfig {
  size_t window = 32;                         // max unacked data messages
  uint64_t rto_ns = 20 * kMillisecond;        // initial retransmit timeout
  uint64_t rto_max_ns = 320 * kMillisecond;   // backoff cap
  size_t max_retx = 10;                       // attempts before dead
  size_t reorder_buffer = 64;                 // ahead-of-seq messages held
};

class CtrlChannel {
 public:
  // on_reset fires when the connection epoch changes under the owner's
  // feet — locally (injected reset) or remotely (peer reset, adopted).
  using ResetFn = std::function<void(uint64_t now_ns)>;

  CtrlChannel(CtrlTransport* net, uint32_t self, uint32_t peer,
              ChannelConfig cfg = {}, FaultInjector* fault = nullptr)
      : net_(net), self_(self), peer_(peer), cfg_(cfg), fault_(fault) {}

  void set_on_reset(ResetFn fn) { on_reset_ = std::move(fn); }

  // Reliable, ordered send. Fills src/dst/seq/ack/conn_epoch. May trigger
  // an injected connection reset *before* the message is assigned a
  // sequence number, in which case this message is the first of the new
  // epoch (everything older is lost).
  void send(CtrlMsg msg, uint64_t now_ns);

  // Fire-and-forget datagram (seq stays 0); still epoch-stamped so stale
  // echoes from before a reset are ignored by the peer.
  void send_datagram(CtrlMsg msg, uint64_t now_ns);

  // Feed one wire message from the peer. Application-deliverable messages
  // (in order, exactly once) are appended to *out; acks and duplicates are
  // consumed internally.
  void on_receive(const CtrlMsg& m, uint64_t now_ns,
                  std::vector<CtrlMsg>* out);

  // Timer pump: retransmit overdue messages, refill the window.
  void tick(uint64_t now_ns);

  // Administrative reconnect (after the owner noticed dead() or switched
  // peers): new epoch, fresh state, not counted as an injected reset.
  void reconnect(uint64_t now_ns);

  bool dead() const { return dead_; }
  uint64_t conn_epoch() const { return epoch_; }
  size_t in_flight() const { return unacked_.size(); }
  size_t queued() const { return pending_.size(); }
  uint32_t peer() const { return peer_; }
  void set_peer(uint32_t peer) { peer_ = peer; }

  struct Stats {
    uint64_t sent = 0;             // first transmissions of data messages
    uint64_t retransmits = 0;      // re-sends after timeout
    uint64_t delivered = 0;        // handed to the application
    uint64_t dups_discarded = 0;   // below-window arrivals dropped
    uint64_t stale_discarded = 0;  // old-epoch arrivals dropped
    uint64_t resets = 0;           // injected connection resets taken here
    uint64_t peer_resets = 0;      // epochs adopted from the peer
    uint64_t lost_to_reset = 0;    // unacked+queued messages a reset killed
    size_t max_in_flight = 0;      // high-water mark of the send window
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Unacked {
    CtrlMsg msg;
    uint64_t next_retx_ns = 0;
    uint32_t attempts = 0;  // transmissions so far (1 = first send)
  };

  void do_reset(uint64_t now_ns, uint64_t new_epoch, bool injected);
  void transmit(const CtrlMsg& m, uint64_t now_ns);
  void pump(uint64_t now_ns);  // move pending_ into the window
  void process_ack(uint64_t ack, uint64_t now_ns);
  void send_ack(uint64_t now_ns);

  CtrlTransport* net_;
  uint32_t self_;
  uint32_t peer_;
  ChannelConfig cfg_;
  FaultInjector* fault_;
  ResetFn on_reset_;

  uint64_t epoch_ = 1;
  uint64_t next_seq_ = 1;              // next sequence number to assign
  std::deque<Unacked> unacked_;        // in seq order
  std::deque<CtrlMsg> pending_;        // waiting for window space
  uint64_t expected_ = 1;              // next seq to deliver
  std::map<uint64_t, CtrlMsg> ahead_;  // reorder buffer (seq -> msg)
  bool dead_ = false;
  Stats stats_;
};

}  // namespace ovs
