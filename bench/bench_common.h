// Shared benchmark plumbing: flag parsing, the TCP_CRR experiment driver
// used by the Table 1 / Table 2 benches, and the closed-loop throughput
// model that converts measured virtual cycles into a transaction rate.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "vswitchd/switch.h"
#include "workload/workloads.h"

namespace ovs::benchutil {

// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv);

  uint64_t u64(const std::string& name, uint64_t def) const;
  double f64(const std::string& name, double def) const;
  bool boolean(const std::string& name, bool def) const;
  std::string str(const std::string& name, const std::string& def) const;

 private:
  std::map<std::string, std::string> kv_;
};

// Machine-readable results: every bench writes BENCH_<name>.json next to
// its stdout tables so sweeps can be consumed without scraping. Schema:
//
//   { "name": "<bench>",
//     "rows": [ { "metric": "...", "value": <number>, "repeats": <n>,
//                 "params": { "<key>": "<value>", ... } }, ... ] }
//
// The file is written by write() or, failing that, the destructor. Set the
// BENCH_OUT environment variable to redirect the output directory.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void add(const std::string& metric, double value,
           const std::map<std::string, std::string>& params = {},
           uint64_t repeats = 1);
  void write();

 private:
  struct Row {
    std::string metric;
    double value;
    uint64_t repeats;
    std::map<std::string, std::string> params;
  };
  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

// The paper's Netperf testbed parameters (§7.2): 400 parallel CRR sessions
// on a 16-core 2.0 GHz server. The throughput of a closed-loop CRR test is
// limited by three serial resources: the userspace flow-setup path, the
// kernel forwarding path, and the application-level request-response loop
// (whose latency grows with the number of flow-setup round trips a
// transaction incurs).
struct CrrModel {
  double sessions = 400;
  double user_cores = 4;          // upcall handler threads (§4.1)
  double kernel_cores = 8;
  double app_floor_s = 3.3e-3;    // per-transaction latency, all cache hits
  double upcall_rt_s = 0.34e-3;   // added latency per flow-setup round trip
};

struct CrrResult {
  double ktps = 0;                // modeled transactions/s, thousands
  double flows = 0;               // steady-state datapath flow count
  double masks = 0;               // datapath tuple count
  double user_cpu_pct = 0;        // % of one core at the modeled rate
  double kernel_cpu_pct = 0;
  double tuples_per_pkt = 0;      // avg megaflow hash tables searched
  double misses_per_txn = 0;      // flow setups per transaction
};

// Runs `txns` measured CRR transactions (after `warmup`) against a Switch
// configured with `cfg` and the §7.2 flow table, and reports the modeled
// throughput and cache shape.
CrrResult run_crr_experiment(const SwitchConfig& cfg, size_t warmup,
                             size_t txns, const CrrModel& model = {});

// Combines per-transaction resource costs into a closed-loop rate.
double model_tps(double user_cycles_per_txn, double kernel_cycles_per_txn,
                 double misses_per_txn, const CostModel& cost,
                 const CrrModel& model);

void print_rule(char c = '-', int width = 78);

}  // namespace ovs::benchutil
