// Reproduces the §7.2 "Comparison to in-kernel switch" experiment.
//
// Paper reference: in the simplest configuration OVS and the Linux bridge
// achieved identical throughput and similar TCP_CRR rates (696 vs 688 ktps).
// Adding ONE rule (drop STP BPDUs / one iptables rule):
//   - Open vSwitch: performance and CPU unchanged,
//   - Linux bridge: connection rate fell to 512 ktps and CPU rose 26-fold
//     (48% -> 1,279%),
// because "built-in kernel functions have per-packet overhead, whereas Open
// vSwitch's overhead is generally fixed per-megaflow".
#include <cstdio>

#include "baseline/linux_bridge.h"
#include "bench_common.h"
#include "sim/clock.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

Packet l2_packet(uint32_t in_port, uint8_t src, uint8_t dst, uint16_t sport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, src));
  p.key.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, dst));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(10, 0, 0, src));
  p.key.set_nw_dst(Ipv4(10, 0, 0, dst));
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(9000);
  p.size_bytes = 400;
  return p;
}

constexpr size_t kPackets = 400000;
const Match kBpduRule =
    MatchBuilder().eth_dst(EthAddr(1, 0x80, 0xc2, 0, 0, 0)).build();

struct Result {
  double mpps;       // forwarding capacity, 2 cores
  double cpu_pct;    // % of one core at 1 Mpps offered
};

Result run_bridge(bool with_rule) {
  LinuxBridge br;
  br.add_port(1);
  br.add_port(2);
  if (with_rule) br.add_drop_rule(kBpduRule);
  Rng rng(11);
  // Warm the MAC table.
  br.process(l2_packet(1, 1, 2, 100), 0);
  br.process(l2_packet(2, 2, 1, 100), 1);
  br.reset();
  for (size_t i = 0; i < kPackets; ++i) {
    const bool fwd = rng.chance(0.5);
    br.process(l2_packet(fwd ? 1 : 2, fwd ? 1 : 2, fwd ? 2 : 1,
                         static_cast<uint16_t>(1024 + (i % 50000))),
               i);
  }
  CostModel m;
  const double cycles_per_pkt = br.cycles() / kPackets;
  Result r;
  r.mpps = 2 * m.ghz * 1e9 / cycles_per_pkt / 1e6;
  r.cpu_pct = 100.0 * cycles_per_pkt * 1e6 / (m.ghz * 1e9);
  return r;
}

Result run_ovs(bool with_rule) {
  SwitchConfig cfg;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(Match{}, 0, OfActions().normal());
  if (with_rule)
    sw.table(0).add_flow(kBpduRule, 100, OfActions::drop());
  Rng rng(11);
  VirtualClock clock;
  // Warm: learn MACs and install megaflows.
  for (int i = 0; i < 4; ++i) {
    sw.inject(l2_packet(1, 1, 2, 100), clock.now());
    sw.inject(l2_packet(2, 2, 1, 100), clock.now());
    sw.handle_upcalls(clock.now());
  }
  sw.cpu().reset();
  const double kern0 = 0;
  for (size_t i = 0; i < kPackets; ++i) {
    const bool fwd = rng.chance(0.5);
    sw.inject(l2_packet(fwd ? 1 : 2, fwd ? 1 : 2, fwd ? 2 : 1,
                        static_cast<uint16_t>(1024 + (i % 50000))),
              clock.now());
    if ((i & 255) == 255) sw.handle_upcalls(clock.now());
    clock.advance(1000);
  }
  CostModel m;
  const double cycles_per_pkt =
      (sw.cpu().kernel_cycles + sw.cpu().user_cycles - kern0) / kPackets;
  Result r;
  r.mpps = 2 * m.ghz * 1e9 / cycles_per_pkt / 1e6;
  r.cpu_pct = 100.0 * cycles_per_pkt * 1e6 / (m.ghz * 1e9);
  return r;
}

}  // namespace

int main(int, char**) {
  BenchReport report("bridge_compare");
  std::printf("7.2 comparison: Open vSwitch vs. Linux bridge "
              "(learning-switch L2 traffic)\n");
  print_rule('=');
  std::printf("%-28s %14s %22s\n", "configuration", "Mpps (2 cores)",
              "CPU% of a core @1Mpps");
  print_rule();

  const Result br0 = run_bridge(false);
  const Result br1 = run_bridge(true);
  const Result ovs0 = run_ovs(false);
  const Result ovs1 = run_ovs(true);

  std::printf("%-28s %14.2f %18.0f%%\n", "Linux bridge, no rules", br0.mpps,
              br0.cpu_pct);
  std::printf("%-28s %14.2f %18.0f%%\n", "Linux bridge, 1 iptables rule",
              br1.mpps, br1.cpu_pct);
  std::printf("%-28s %14.2f %18.0f%%\n", "Open vSwitch, no rules", ovs0.mpps,
              ovs0.cpu_pct);
  std::printf("%-28s %14.2f %18.0f%%\n", "Open vSwitch, +BPDU drop flow",
              ovs1.mpps, ovs1.cpu_pct);
  print_rule();
  std::printf(
      "bridge CPU amplification with 1 rule: %.1fx   (paper: ~26x)\n",
      br1.cpu_pct / br0.cpu_pct);
  std::printf(
      "OVS CPU change with 1 rule:           %.2fx  (paper: unchanged)\n",
      ovs1.cpu_pct / ovs0.cpu_pct);
  const struct {
    const char* sw;
    const char* rules;
    const Result& r;
  } rows[] = {{"linux_bridge", "none", br0},
              {"linux_bridge", "one", br1},
              {"ovs", "none", ovs0},
              {"ovs", "one", ovs1}};
  for (const auto& row : rows) {
    const std::map<std::string, std::string> params = {
        {"switch", row.sw}, {"rules", row.rules}};
    report.add("mpps", row.r.mpps, params, kPackets);
    report.add("cpu_pct_at_1mpps", row.r.cpu_pct, params, kPackets);
  }
  report.add("bridge_cpu_amplification", br1.cpu_pct / br0.cpu_pct,
             {{"switch", "linux_bridge"}});
  report.add("ovs_cpu_amplification", ovs1.cpu_pct / ovs0.cpu_pct,
             {{"switch", "ovs"}});
  return 0;
}
