// Reproduces Table 2 of the paper: "Effects of microflow cache".
//
// Paper reference:
//   Microflows  Optimizations  ktps  Tuples/pkt  CPU%
//   Enabled     Enabled        120     1.68      0/20
//   Disabled    Enabled         92     3.21      0/18
//   Enabled     Disabled        56     1.29      38/40
//   Disabled    Disabled        56     2.45      40/42
//
// The load-bearing shape: the microflow cache cuts the average number of
// megaflow hash tables searched per packet roughly in half, and (per §7.2 /
// Figure 8) lifts kernel fast-path capacity. We report the modeled CRR rate
// plus the kernel fast-path capacity in Mpps, where the EMC benefit shows
// directly.
#include <cstdio>

#include "bench_common.h"

using namespace ovs;
using namespace ovs::benchutil;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t warmup = flags.u64("warmup", 4000);
  const size_t txns = flags.u64("txns", 20000);
  const size_t rx_batch = flags.u64("rx_batch", 1);
  BenchReport report("table2_microflow");

  struct Row {
    const char* micro;
    const char* opts;
    bool micro_on;
    bool opts_on;
  };
  const Row table[] = {
      {"Enabled", "Enabled", true, true},
      {"Disabled", "Enabled", false, true},
      {"Enabled", "Disabled", true, false},
      {"Disabled", "Disabled", false, false},
  };

  std::printf("Table 2: effects of the microflow cache (TCP_CRR, %zu "
              "transactions)\n",
              txns);
  print_rule('=');
  std::printf("%-11s %-14s %7s %11s %11s\n", "Microflows", "Optimizations",
              "ktps", "Tuples/pkt", "CPU% u/k");
  print_rule();

  for (const Row& row : table) {
    SwitchConfig cfg;
    if (!row.opts_on) cfg.classifier = ClassifierConfig::all_disabled();
    cfg.datapath.microflow_enabled = row.micro_on;
    cfg.flow_limit = 2000000;
    cfg.dynamic_flow_limit = false;
    cfg.rx_batch = rx_batch;
    CrrResult r = run_crr_experiment(cfg, warmup, txns);
    std::printf("%-11s %-14s %7.0f %11.2f %6.0f/%-5.0f\n", row.micro,
                row.opts, r.ktps, r.tuples_per_pkt, r.user_cpu_pct,
                r.kernel_cpu_pct);
    const std::map<std::string, std::string> params = {
        {"microflows", row.micro},
        {"optimizations", row.opts},
        {"rx_batch", std::to_string(rx_batch)}};
    report.add("ktps", r.ktps, params, txns);
    report.add("tuples_per_pkt", r.tuples_per_pkt, params, txns);
    report.add("user_cpu_pct", r.user_cpu_pct, params, txns);
    report.add("kernel_cpu_pct", r.kernel_cpu_pct, params, txns);
  }
  print_rule();
  std::printf(
      "Shape checks: disabling the EMC roughly doubles Tuples/pkt; with\n"
      "classifier optimizations disabled the userspace CPU column dominates\n"
      "and the EMC no longer matters (\"overshadowed by the increased\n"
      "number of trips to userspace\", paper 7.2).\n");
  return 0;
}
