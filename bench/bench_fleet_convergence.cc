// Fleet convergence bench (DESIGN.md §12): one active controller (plus a
// standby) programs a rack-scale fleet of real switches over the lossy
// control-plane wire, in three phases:
//
//   bootstrap — agents discover the controller by gossip and pull the
//               baseline policy via resync (cold start, clean wire);
//   change    — a fleet-wide policy change fans out while every link drops
//               p% of messages (plus occasional connection resets);
//   failover  — another change is pushed and the master is killed in the
//               same instant, mid-fan-out; the standby takes over by
//               discovery, agents roll the partial epoch back during
//               resync, and the management layer re-issues the change.
//
// After each converged phase every switch is probed with live packets
// against the policy it is supposed to hold.
//
// Gates (exit non-zero on failure, so CI can run this as a check):
//   1. the lossy policy change converges within the deadline;
//   2. flow-mod retransmissions under p% loss stay near the information-
//      theoretic floor (bounded retries, no retransmit storms);
//   3. zero misdelivered probe packets fleet-wide — including after the
//      controller kill and standby takeover — and no stale rules;
//   4. the whole scenario replays identically from the same seed.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ctrl/control_plane.h"
#include "sim/clock.h"
#include "util/fault.h"
#include "vswitchd/switch.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

struct Params {
  size_t n_switches = 1024;
  double drop_prob = 0.05;       // per-message wire loss in the change phase
  double reset_prob = 0.002;     // per-send connection resets, change phase
  double converge_deadline_s = 10.0;  // virtual, per phase
  uint64_t seed = 21;
};

// Policy sequence: each epoch moves the 10.0.0.0/8 rule to a new priority
// (so a partially applied epoch leaves a leftover the rollback must prune)
// and flips the egress port (so probes can attribute delivery per epoch).
const std::vector<FlowModPayload> kEpoch1 = {
    {FlowModPayload::Op::kAdd,
     "table=0, priority=10, ip, nw_dst=10.0.0.0/8, actions=output:2"}};
const std::vector<FlowModPayload> kEpoch2 = {
    {FlowModPayload::Op::kDelete, "ip, nw_dst=10.0.0.0/8"},
    {FlowModPayload::Op::kAdd,
     "table=0, priority=11, ip, nw_dst=10.0.0.0/8, actions=output:3"}};
const std::vector<FlowModPayload> kEpoch3 = {
    {FlowModPayload::Op::kDelete, "ip, nw_dst=10.0.0.0/8"},
    {FlowModPayload::Op::kAdd,
     "table=0, priority=12, ip, nw_dst=10.0.0.0/8, actions=output:2"}};

struct Outcome {
  bool converged[3] = {false, false, false};
  uint64_t converge_ns[3] = {0, 0, 0};
  uint64_t retx_change = 0;       // controller-side retransmits, change phase
  uint64_t mods_sent_change = 0;  // channel sends, change phase
  uint64_t wire_dropped = 0;
  uint64_t misdelivered = 0;      // probe packets out the wrong port
  uint64_t undelivered = 0;       // probe packets that died
  uint64_t stale_rules = 0;       // switches holding != 1 rule at the end
  uint64_t takeovers = 0;
  uint64_t rules_pruned = 0;
  uint64_t syncs = 0;
  std::vector<uint64_t> fingerprint;
};

struct ControllerTotals {
  uint64_t sent = 0;
  uint64_t retransmits = 0;
};

ControllerTotals controller_totals(ControlPlane& cp) {
  ControllerTotals t;
  for (size_t j = 0; j < cp.n_controllers(); ++j) {
    const CtrlChannel::Stats s = cp.controller(j).channel_totals();
    t.sent += s.sent;
    t.retransmits += s.retransmits;
  }
  return t;
}

// Probes one switch: a packet for the policy rule must leave on `expect`.
void probe(Switch& sw, uint32_t expect, uint64_t base_ns, Outcome* out) {
  size_t hits = 0;
  sw.set_output_handler([&](uint32_t port, const Packet&) {
    if (port == expect)
      ++hits;
    else
      ++out->misdelivered;
  });
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 1, 1, 1));
  p.key.set_nw_dst(Ipv4(10, 0, 0, 42));
  p.key.set_tp_src(1234);
  p.key.set_tp_dst(443);
  p.size_bytes = 100;
  sw.inject(p, base_ns);
  sw.handle_upcalls(base_ns + kMillisecond);
  sw.inject(p, base_ns + 2 * kMillisecond);
  sw.handle_upcalls(base_ns + 3 * kMillisecond);
  sw.set_output_handler(nullptr);
  if (hits == 0) ++out->undelivered;
}

Outcome run_scenario(const Params& P) {
  Outcome out;
  std::vector<std::unique_ptr<Switch>> switches;
  std::vector<Switch*> ptrs;
  for (size_t i = 0; i < P.n_switches; ++i) {
    auto sw = std::make_unique<Switch>();
    sw->add_port(1);
    sw->add_port(2);
    sw->add_port(3);
    ptrs.push_back(sw.get());
    switches.push_back(std::move(sw));
  }

  FaultInjector fault(P.seed * 0x9E37 + 1);
  ControlPlaneConfig cfg;
  cfg.seed = P.seed;
  cfg.n_controllers = 2;
  cfg.fault = &fault;  // armed only during the change phase
  ControlPlane cp(ptrs, cfg);
  cp.start(0);
  const auto deadline =
      static_cast<uint64_t>(P.converge_deadline_s * 1e9);

  // Phase 1: bootstrap — discovery + initial resync, clean wire.
  uint64_t t0 = cp.now();
  uint64_t epoch = cp.push_policy(kEpoch1);
  uint64_t t = cp.run_until_converged(epoch, t0 + deadline);
  out.converged[0] = t != UINT64_MAX;
  out.converge_ns[0] = out.converged[0] ? t - t0 : 0;

  // Phase 2: fleet-wide change under p% loss + occasional resets.
  fault.set_probability(FaultPoint::kCtrlMsgDrop, P.drop_prob);
  fault.set_probability(FaultPoint::kCtrlConnReset, P.reset_prob);
  const ControllerTotals before = controller_totals(cp);
  const uint64_t dropped_before = cp.net().stats().dropped;
  t0 = cp.now();
  epoch = cp.push_policy(kEpoch2);
  t = cp.run_until_converged(epoch, t0 + deadline);
  out.converged[1] = t != UINT64_MAX;
  out.converge_ns[1] = out.converged[1] ? t - t0 : 0;
  const ControllerTotals after = controller_totals(cp);
  out.retx_change = after.retransmits - before.retransmits;
  out.mods_sent_change = after.sent - before.sent;
  out.wire_dropped = cp.net().stats().dropped - dropped_before;
  fault.disarm_all();
  // Probe after one revalidation period: flow-mods land in the tables at
  // the barrier, and the periodic revalidator sweeps them into any cached
  // megaflows (the OVS model — caches are revalidated, not invalidated).
  if (out.converged[1]) {
    for (auto& sw : switches) {
      sw->run_maintenance(cp.now());
      probe(*sw, 3, cp.now(), &out);
    }
  }

  // Phase 3: push the next change and kill the master in the same instant
  // (mid-fan-out); the standby takes over and the change is re-issued.
  t0 = cp.now();
  cp.push_policy(kEpoch3);
  cp.kill_active();
  cp.run_until(cp.now() + 5 * kSecond);  // discovery ages the master out
  epoch = cp.push_policy(kEpoch3);       // management re-issues the intent
  t = epoch == 0 ? UINT64_MAX : cp.run_until_converged(epoch, t0 + deadline);
  out.converged[2] = t != UINT64_MAX;
  out.converge_ns[2] = out.converged[2] ? t - t0 : 0;
  if (out.converged[2]) {
    for (auto& sw : switches) {
      sw->run_maintenance(cp.now());
      probe(*sw, 2, cp.now(), &out);
      if (sw->pipeline().table(0).flow_count() != 1) ++out.stale_rules;
    }
  }

  const Controller* master = cp.active_controller();
  out.takeovers = master != nullptr ? master->role_generation() - 1 : 0;
  const CtrlAgent::Stats a = cp.agent_stat_totals();
  out.rules_pruned = a.rules_pruned;
  out.syncs = a.syncs_completed;
  const CtrlChannel::Stats ch = cp.agent_channel_totals();
  const CtrlTransport::Stats& w = cp.net().stats();
  out.fingerprint = {out.converge_ns[0], out.converge_ns[1],
                     out.converge_ns[2], out.retx_change,
                     out.mods_sent_change, out.wire_dropped,
                     out.misdelivered,   out.undelivered,
                     out.stale_rules,    out.takeovers,
                     a.flow_mods_applied, a.rules_pruned,
                     a.syncs_completed,  a.barriers_replied,
                     a.stale_gen_fenced, a.standalone_entries,
                     ch.retransmits,     ch.resets,
                     w.sent,             w.delivered,
                     cp.discovery().round(), cp.discovery().gossip_sent()};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Params P;
  if (flags.boolean("quick", false)) P.n_switches = 128;
  P.n_switches = flags.u64("switches", P.n_switches);
  P.drop_prob = flags.f64("drop", P.drop_prob);
  P.reset_prob = flags.f64("reset", P.reset_prob);
  P.converge_deadline_s = flags.f64("deadline", P.converge_deadline_s);
  P.seed = flags.u64("seed", P.seed);

  BenchReport report("fleet_convergence");
  std::printf("Fleet convergence: %zu switches, 1 master + 1 standby; "
              "change under %.1f%% loss / %.2f%% resets; kill mid-fan-out\n",
              P.n_switches, 100 * P.drop_prob, 100 * P.reset_prob);
  print_rule('=');

  const Outcome o = run_scenario(P);
  const Outcome r = run_scenario(P);

  static const char* kPhases[3] = {"bootstrap", "lossy_change", "failover"};
  std::printf("%-14s %12s %10s\n", "phase", "converged", "time_ms");
  print_rule();
  for (int i = 0; i < 3; ++i)
    std::printf("%-14s %12s %10.1f\n", kPhases[i],
                o.converged[i] ? "yes" : "NO",
                static_cast<double>(o.converge_ns[i]) / 1e6);
  print_rule();
  std::printf("change-phase wire: %llu channel sends, %llu dropped, "
              "%llu retransmits\n",
              static_cast<unsigned long long>(o.mods_sent_change),
              static_cast<unsigned long long>(o.wire_dropped),
              static_cast<unsigned long long>(o.retx_change));
  std::printf("failover: %llu takeover(s), %llu resyncs, %llu rules pruned\n",
              static_cast<unsigned long long>(o.takeovers),
              static_cast<unsigned long long>(o.syncs),
              static_cast<unsigned long long>(o.rules_pruned));
  std::printf("probes: %llu misdelivered, %llu undelivered, "
              "%llu stale-rule switches\n",
              static_cast<unsigned long long>(o.misdelivered),
              static_cast<unsigned long long>(o.undelivered),
              static_cast<unsigned long long>(o.stale_rules));

  const bool gate_converged =
      o.converged[0] && o.converged[1] && o.converged[2];
  // Retries are bounded by the loss process itself: with per-message loss p
  // (data or its ack) the expected retransmit fraction is ~2p/(1-2p); allow
  // 3x that plus slack for reset-triggered resyncs before calling it a
  // retransmit storm.
  const double retx_ratio =
      static_cast<double>(o.retx_change) /
      std::max<double>(1.0, static_cast<double>(o.mods_sent_change));
  const double retx_limit =
      3.0 * 2.0 * P.drop_prob / (1.0 - 2.0 * P.drop_prob) + 0.05;
  const bool gate_retx = retx_ratio <= retx_limit;
  const bool gate_delivery =
      o.misdelivered == 0 && o.undelivered == 0 && o.stale_rules == 0;
  const bool deterministic = o.fingerprint == r.fingerprint;

  std::printf("all phases converged within %.1fs: %s\n",
              P.converge_deadline_s, gate_converged ? "PASS" : "FAIL");
  std::printf("retransmit ratio %.3f  [gate <= %.3f: %s]\n", retx_ratio,
              retx_limit, gate_retx ? "PASS" : "FAIL");
  std::printf("zero misdelivery after takeover: %s\n",
              gate_delivery ? "PASS" : "FAIL");
  std::printf("deterministic replay from seed %llu: %s\n",
              static_cast<unsigned long long>(P.seed),
              deterministic ? "PASS" : "FAIL");

  for (int i = 0; i < 3; ++i)
    report.add("converge_ms", static_cast<double>(o.converge_ns[i]) / 1e6,
               {{"phase", kPhases[i]}});
  report.add("retx_ratio", retx_ratio);
  report.add("wire_dropped", static_cast<double>(o.wire_dropped));
  report.add("misdelivered", static_cast<double>(o.misdelivered));
  report.add("stale_rules", static_cast<double>(o.stale_rules));
  report.add("takeovers", static_cast<double>(o.takeovers));
  report.add("rules_pruned", static_cast<double>(o.rules_pruned));
  report.add("deterministic", deterministic ? 1 : 0);
  report.write();

  return gate_converged && gate_retx && gate_delivery && deterministic ? 0
                                                                       : 1;
}
