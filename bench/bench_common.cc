#include "bench_common.h"

#include <algorithm>
#include <cstdlib>

#include "sim/clock.h"
#include "workload/table_gen.h"

namespace ovs::benchutil {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

BenchReport::~BenchReport() { write(); }

void BenchReport::add(const std::string& metric, double value,
                      const std::map<std::string, std::string>& params,
                      uint64_t repeats) {
  rows_.push_back(Row{metric, value, repeats, params});
}

void BenchReport::write() {
  if (written_) return;
  written_ = true;
  std::string dir = ".";
  if (const char* env = std::getenv("BENCH_OUT")) dir = env;
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BenchReport: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"rows\": [\n",
               json_escape(name_).c_str());
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    std::fprintf(f,
                 "    {\"metric\": \"%s\", \"value\": %.17g, "
                 "\"repeats\": %llu, \"params\": {",
                 json_escape(r.metric).c_str(), r.value,
                 static_cast<unsigned long long>(r.repeats));
    size_t j = 0;
    for (const auto& [k, v] : r.params)
      std::fprintf(f, "%s\"%s\": \"%s\"", j++ ? ", " : "",
                   json_escape(k).c_str(), json_escape(v).c_str());
    std::fprintf(f, "}}%s\n", i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos)
      kv_[arg.substr(2)] = "1";
    else
      kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
  }
}

uint64_t Flags::u64(const std::string& name, uint64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stoull(it->second);
}

double Flags::f64(const std::string& name, double def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stod(it->second);
}

bool Flags::boolean(const std::string& name, bool def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  return it->second != "0" && it->second != "false";
}

std::string Flags::str(const std::string& name,
                       const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

double model_tps(double user_cycles_per_txn, double kernel_cycles_per_txn,
                 double misses_per_txn, const CostModel& cost,
                 const CrrModel& model) {
  const double core_cps = cost.ghz * 1e9;
  const double cap_user =
      user_cycles_per_txn > 0
          ? model.user_cores * core_cps / user_cycles_per_txn
          : 1e12;
  const double cap_kernel =
      kernel_cycles_per_txn > 0
          ? model.kernel_cores * core_cps / kernel_cycles_per_txn
          : 1e12;
  const double latency =
      model.app_floor_s + misses_per_txn * model.upcall_rt_s;
  const double cap_app = model.sessions / latency;
  return 1.0 / (1.0 / cap_user + 1.0 / cap_kernel + 1.0 / cap_app);
}

CrrResult run_crr_experiment(const SwitchConfig& cfg, size_t warmup,
                             size_t txns, const CrrModel& model) {
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  install_paper_microbench_table(sw, 2);

  TcpCrrWorkload crr(TcpCrrWorkload::Config{});
  VirtualClock clock;

  double tps_est = 50000;  // refined as cycle costs are observed
  uint64_t next_maintenance = kSecond;
  uint64_t measured_start_misses = 0;
  double measured_start_user = 0, measured_start_kernel = 0;
  uint64_t measured_start_packets = 0, measured_start_tuples = 0;

  // Background chatter present on any real segment: periodic ARP refreshes
  // and ICMP pings. They diversify the megaflow mask population the way the
  // paper's testbed traffic did, without perturbing the CRR rates.
  auto inject_background = [&]() {
    Packet arp;
    arp.key.set_in_port(1);
    arp.key.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 1));
    arp.key.set_eth_dst(kEthBroadcast);
    arp.key.set_eth_type(ethertype::kArp);
    arp.key.set_arp_op(1);
    arp.key.set_nw_src(Ipv4(10, 1, 0, 1));
    arp.key.set_nw_dst(Ipv4(9, 1, 1, 2));
    sw.inject(arp, clock.now());
    sw.handle_upcalls(clock.now());
    Packet ping;
    ping.key.set_in_port(2);
    ping.key.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 2));
    ping.key.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 1));
    ping.key.set_eth_type(ethertype::kIpv4);
    ping.key.set_nw_proto(ipproto::kIcmp);
    ping.key.set_nw_src(Ipv4(9, 1, 1, 2));
    ping.key.set_nw_dst(Ipv4(10, 1, 0, 1));
    ping.key.set_tp_src(8);
    sw.inject(ping, clock.now());
    sw.handle_upcalls(clock.now());
  };

  const size_t total = warmup + txns;
  // With cfg.rx_batch > 1, `burst` of the 400 parallel CRR sessions are
  // interleaved onto the wire: packet k of each in-flight transaction rides
  // in one receive burst through Switch::inject_batch. Each session is still
  // a serial request-response loop (packet k+1 never precedes packet k, and
  // upcalls drain between bursts), so flow-setup semantics are unchanged.
  const size_t burst = std::max<size_t>(1, cfg.rx_batch);
  std::vector<std::vector<Packet>> group;
  std::vector<Packet> wire;
  size_t next_background = 0;
  size_t t = 0;
  while (t < total) {
    if (t >= next_background) {
      inject_background();
      next_background += 256;
    }
    if (t == warmup || (t < warmup && t + burst > warmup)) {
      measured_start_misses = sw.datapath().stats().misses;
      measured_start_user = sw.cpu().user_cycles;
      measured_start_kernel = sw.cpu().kernel_cycles;
      measured_start_packets = sw.datapath().stats().packets;
      measured_start_tuples = sw.datapath().stats().tuples_searched;
    }
    const size_t b = std::min(burst, total - t);
    if (b == 1) {
      // Netperf CRR is a serial request-response loop: each packet is only
      // sent once the previous one was delivered, so a pending flow setup
      // completes before the next packet of the same connection arrives.
      for (const Packet& pkt : crr.next_transaction()) {
        sw.inject(pkt, clock.now());
        sw.handle_upcalls(clock.now());
      }
    } else {
      group.clear();
      size_t maxlen = 0;
      for (size_t j = 0; j < b; ++j) {
        group.push_back(crr.next_transaction());
        maxlen = std::max(maxlen, group.back().size());
      }
      for (size_t k = 0; k < maxlen; ++k) {
        wire.clear();
        for (const auto& txn : group)
          if (k < txn.size()) wire.push_back(txn[k]);
        sw.inject_batch(wire, clock.now());
        sw.handle_upcalls(clock.now());
      }
    }

    // Advance virtual time at the currently-estimated transaction rate so
    // idle timeouts and revalidation behave as they would at that rate.
    clock.advance(static_cast<uint64_t>(
        static_cast<double>(b) * 1e9 / tps_est));
    while (clock.now() >= next_maintenance) {
      sw.run_maintenance(clock.now());
      next_maintenance += kSecond;
    }
    const size_t t2 = t + b;
    if (t2 > warmup && t2 / 1024 != t / 1024) {
      const double txns_done = static_cast<double>(t2 - warmup);
      const double user_cpt =
          (sw.cpu().user_cycles - measured_start_user) / txns_done;
      const double kern_cpt =
          (sw.cpu().kernel_cycles - measured_start_kernel) / txns_done;
      const double mpt =
          static_cast<double>(sw.datapath().stats().misses -
                              measured_start_misses) /
          txns_done;
      tps_est = model_tps(user_cpt, kern_cpt, mpt, cfg.cost, model);
    }
    t = t2;
  }

  const double txns_done = static_cast<double>(txns);
  const double user_cpt =
      (sw.cpu().user_cycles - measured_start_user) / txns_done;
  const double kern_cpt =
      (sw.cpu().kernel_cycles - measured_start_kernel) / txns_done;
  const double misses_per_txn =
      static_cast<double>(sw.datapath().stats().misses -
                          measured_start_misses) /
      txns_done;

  CrrResult r;
  const double tps = model_tps(user_cpt, kern_cpt, misses_per_txn,
                               cfg.cost, model);
  r.ktps = tps / 1000.0;
  r.misses_per_txn = misses_per_txn;
  // Steady-state flow count: every flow setup lives for the idle timeout.
  const double idle_s =
      static_cast<double>(cfg.idle_timeout_ns) / 1e9;
  const double extrapolated = misses_per_txn * tps * idle_s;
  r.flows = std::min(static_cast<double>(cfg.flow_limit),
                     std::max(extrapolated,
                              static_cast<double>(sw.datapath().flow_count())));
  r.masks = static_cast<double>(sw.datapath().mask_count());
  r.tuples_per_pkt =
      static_cast<double>(sw.datapath().stats().tuples_searched -
                          measured_start_tuples) /
      static_cast<double>(sw.datapath().stats().packets -
                          measured_start_packets);
  // CPU% of one core at the modeled rate.
  const double core_cps = cfg.cost.ghz * 1e9;
  r.user_cpu_pct = 100.0 * user_cpt * tps / core_cps;
  r.kernel_cpu_pct = 100.0 * kern_cpt * tps / core_cps;
  return r;
}

void print_rule(char c, int width) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace ovs::benchutil
