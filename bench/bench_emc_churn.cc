// EMC sizing / insertion-policy ablation under adversarial microflow churn
// (closes the ROADMAP item: "EMC shard sizing / eviction policy under
// adversarial microflow churn has no bench yet").
//
// Setup: a standalone datapath with one catch-all megaflow, so the megaflow
// classifier always hits in one tuple and the only variable is the
// first-level microflow (EMC) cache. Traffic interleaves a Zipf-weighted
// hot set of connections with a tunable fraction of one-shot connections
// (the port-scan / tuple-churn signature): every one-shot packet that is
// inserted into the EMC evicts something, and what it evicts is a hot
// entry's slot.
//
// Swept axes:
//   * EMC capacity (microflow_sets x ways slots);
//   * emc-insert-inv-prob (the §7.3-style probabilistic-insertion
//     mitigation: 1 = always insert, N = insert with probability 1/N);
//   * backend: the inline set-associative table (pseudo-random replacement)
//     vs. ConcurrentEmc (cuckoo-backed, FIFO eviction) — the cache the
//     multi-worker datapath shards per thread.
//
// Shape to match §7.3: with always-insert, heavy churn collapses the EMC
// hit rate (each one-shot evicts a live entry for a hint that is never
// consulted again) AND burns an EMC slot write per one-shot packet.
// Probabilistic insertion (emc-insert-inv-prob) buys the insert CPU back —
// the dominant win, visible in the Mpps column — and modestly protects the
// hot set's residency; cache capacity is what moves the hit-rate columns.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datapath/datapath.h"
#include "workload/workloads.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

Packet conn_packet(uint32_t id) {
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(10, static_cast<uint8_t>(id >> 16),
                        static_cast<uint8_t>(id >> 8),
                        static_cast<uint8_t>(id)));
  p.key.set_nw_dst(Ipv4(9, 1, 1, 2));
  p.key.set_tp_src(static_cast<uint16_t>(1024 + (id & 0x7FFF)));
  p.key.set_tp_dst(443);
  return p;
}

struct SeriesResult {
  double emc_hit_rate = 0;   // all packets
  double hot_hit_rate = 0;   // hot-set packets only (the rate that matters)
  double mpps = 0;           // modeled, 2 forwarding cores
  uint64_t inserts = 0;
  uint64_t skips = 0;
};

SeriesResult run_series(size_t emc_slots, uint32_t inv_prob, bool concurrent,
                        double churn_frac, size_t hot_conns, size_t packets,
                        uint64_t seed) {
  DatapathConfig cfg;
  cfg.microflow_ways = 2;
  cfg.microflow_sets = emc_slots / cfg.microflow_ways;
  cfg.use_concurrent_emc = concurrent;
  cfg.emc_insert_inv_prob = inv_prob;
  Datapath dp(cfg);
  dp.install(MatchBuilder().ip(), DpActions().output(2), 0);

  std::vector<Packet> hot;
  hot.reserve(hot_conns);
  for (uint32_t i = 0; i < hot_conns; ++i) hot.push_back(conn_packet(i));
  ZipfSampler zipf(hot_conns, 1.2);
  Rng rng(seed);
  uint32_t oneshot_seq = 1u << 24;  // disjoint id space from the hot set

  // Warm the hot set into the EMC.
  for (size_t i = 0; i < hot_conns * 4; ++i)
    dp.receive(hot[zipf.sample(rng)], i);
  dp.reset_stats();

  CostModel m;
  double cycles = 0;
  uint64_t hot_pkts = 0, hot_emc_hits = 0;
  for (size_t i = 0; i < packets; ++i) {
    const bool churn = rng.chance(churn_frac);
    const Packet& p =
        churn ? conn_packet(oneshot_seq++) : hot[zipf.sample(rng)];
    const auto rx = dp.receive(p, 100000 + i);
    cycles += m.per_packet + m.microflow_probe;
    if (rx.path != Datapath::Path::kMicroflowHit)
      cycles += m.per_tuple * rx.tuples_searched;
    if (!churn) {
      ++hot_pkts;
      hot_emc_hits += rx.path == Datapath::Path::kMicroflowHit ? 1 : 0;
    }
  }
  // Each megaflow hit that (probabilistically) installed an EMC hint paid a
  // slot write; this is the CPU the mitigation recovers under churn.
  cycles += m.emc_insert * static_cast<double>(dp.stats().emc_inserts);

  SeriesResult r;
  const Datapath::Stats& s = dp.stats();
  r.emc_hit_rate = static_cast<double>(s.microflow_hits) /
                   static_cast<double>(s.packets);
  r.hot_hit_rate = hot_pkts == 0 ? 0
                                 : static_cast<double>(hot_emc_hits) /
                                       static_cast<double>(hot_pkts);
  const double cycles_per_pkt = cycles / static_cast<double>(packets);
  r.mpps = 2 * m.ghz * 1e9 / cycles_per_pkt / 1e6;
  r.inserts = s.emc_inserts;
  r.skips = s.emc_insert_skips;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t packets = flags.u64("packets", 300000);
  const size_t hot_conns = flags.u64("hot_conns", 1024);
  const uint64_t seed = flags.u64("seed", 99);
  BenchReport report("emc_churn");

  const size_t slot_sweep[] = {2048, 8192};
  const double churn_sweep[] = {0.2, 0.8};
  const uint32_t inv_sweep[] = {1, 8, 32};

  std::printf("EMC churn ablation: %zu hot conns (Zipf 1.2) vs one-shot "
              "churn; catch-all megaflow, %zu packets per cell\n",
              hot_conns, packets);
  print_rule('=');
  std::printf("%10s %6s %6s %9s | %8s %8s %8s | %10s\n", "backend", "slots",
              "churn", "inv_prob", "emc_hit", "hot_hit", "Mpps", "skips");
  print_rule();
  for (bool concurrent : {false, true}) {
    for (size_t slots : slot_sweep) {
      for (double churn : churn_sweep) {
        for (uint32_t inv : inv_sweep) {
          const SeriesResult r = run_series(slots, inv, concurrent, churn,
                                            hot_conns, packets, seed);
          std::printf("%10s %6zu %5.0f%% %9u | %7.1f%% %7.1f%% %8.2f | %10llu\n",
                      concurrent ? "concurrent" : "inline", slots,
                      100 * churn, inv, 100 * r.emc_hit_rate,
                      100 * r.hot_hit_rate, r.mpps,
                      static_cast<unsigned long long>(r.skips));
          const std::map<std::string, std::string> params = {
              {"backend", concurrent ? "concurrent" : "inline"},
              {"slots", std::to_string(slots)},
              {"churn", std::to_string(churn)},
              {"inv_prob", std::to_string(inv)}};
          report.add("emc_hit_rate", r.emc_hit_rate, params, packets);
          report.add("hot_hit_rate", r.hot_hit_rate, params, packets);
          report.add("mpps", r.mpps, params, packets);
        }
        print_rule();
      }
    }
  }
  std::printf(
      "Shape checks: raising inv_prob trades a point or two of hit rate\n"
      "for the per-miss EMC-insert cost, and under 80%% churn that trade\n"
      "is decisive (Mpps rises ~60%% from inv_prob=1 to 32 while the hot\n"
      "set's residency holds). Cache capacity, not insertion policy, moves\n"
      "the hit-rate columns. Both replacement policies (pseudo-random\n"
      "inline, FIFO concurrent) degrade alike under churn and respond to\n"
      "the same mitigation.\n");
  report.write();
  return 0;
}
