// Conntrack churn robustness bench (DESIGN.md §15): an attacker zone churns
// a Zipf-distributed universe of connections through the bounded connection
// table — explicit commits plus first-packet traffic, so every fresh
// connection both competes for a conntrack slot and mints a per-connection
// megaflow — while a quiet victim zone holds a small set of established
// connections whose packets ride the ct_state=established route.
//
// Four configurations run the identical offered load:
//
//   off      — fair eviction, degradation policies disabled: the bounded
//              table alone (the pre-§15 switch with caps);
//   on       — fair eviction + ct-pressure degradation (ct_pressure_ratio):
//              sustained occupancy ratchets the megaflow limit down, so the
//              revalidator stops paying for the churn's cache bloat;
//   unfair   — the eviction-fairness ablation (globally-oldest eviction):
//              the attacker's churn displaces the idle victim's state;
//   replay   — the `on` run again from the same seed (determinism gate).
//
// Gates, by exit code:
//   1. bounded memory: the connection table never exceeds ct_cap in any
//      run, storm included (sampled every tick);
//   2. eviction fairness: under fair eviction every victim connection
//      survives the storm; under the unfair ablation at most half do
//      (the attacker displaces the quiet zone's state);
//   3. goodput floor: victim established-route goodput (packets per
//      modeled CPU-second) with ct-pressure degradation on is at least
//      `goodput_gate` x the off run's — shedding churn-minted megaflows
//      buys back revalidation time;
//   4. deterministic replay: two `on` runs from one seed produce identical
//      counter fingerprints.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "util/rng.h"
#include "vswitchd/switch.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

constexpr uint32_t kAttackPort = 1;
constexpr uint32_t kVictimPort = 2;
constexpr uint32_t kNewRoute = 3;  // ct_state=new egress
constexpr uint32_t kEstRoute = 4;  // ct_state=established egress
constexpr uint16_t kAttackService = 7070;  // ct zone 1
constexpr uint16_t kVictimService = 9090;  // ct zone 2

struct Params {
  size_t conn_universe = 2'000'000;  // attacker Zipf universe
  double zipf_alpha = 2.0;           // u^alpha concentration (head-heavy)
  size_t ct_cap = 4096;
  size_t victim_conns = 256;
  size_t ticks = 1000;               // 1ms ticks
  size_t attack_per_tick = 2000;     // commits + first packets per tick
  size_t victim_per_tick = 500;
  size_t handler_budget = 64;        // upcalls serviced per tick
  double remove_frac = 0.05;         // explicit teardowns per tick
  double goodput_gate = 1.10;        // on/off victim goodput ratio floor
  uint64_t seed = 23;
};

enum class Config { kOff, kOn, kUnfair };

const char* config_name(Config c) {
  switch (c) {
    case Config::kOff: return "off";
    case Config::kOn: return "on";
    case Config::kUnfair: return "unfair";
  }
  return "?";
}

struct Outcome {
  uint64_t committed = 0;
  uint64_t evicted = 0;
  uint64_t ct_size_peak = 0;   // max table size sampled per tick
  bool bounded = true;         // never observed above the cap
  size_t victim_survivors = 0; // victim conns still established at end
  uint64_t victim_est_delivered = 0;  // packets out the established route
  double cpu_cycles = 0;       // user+kernel delta over the storm
  uint64_t pressure_engaged = 0;
  uint64_t flows_at_end = 0;
  std::vector<uint64_t> fingerprint;

  double goodput(const CostModel& cost) const {
    if (cpu_cycles <= 0) return 0;
    return static_cast<double>(victim_est_delivered) /
           cost.seconds(cpu_cycles);
  }
};

FlowKey conn_key(uint32_t id, uint16_t service, uint32_t in_port) {
  FlowKey k;
  k.set_in_port(in_port);
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  // 24 bits of connection id in the source address, the rest in the port:
  // unique per id across the whole universe.
  k.set_nw_src(Ipv4((10u << 24) | (id & 0xffffffu)));
  k.set_nw_dst(Ipv4(198, 51, 100, 1));
  k.set_tp_src(static_cast<uint16_t>(1024 + (id >> 24)));
  k.set_tp_dst(service);
  return k;
}

Outcome run_churn(Config config, const Params& P) {
  SwitchConfig cfg;
  cfg.flow_limit = 20000;
  cfg.ct_max_entries = P.ct_cap;
  cfg.ct_fair_eviction = config != Config::kUnfair;
  cfg.degradation.enabled = config != Config::kOff;
  if (config != Config::kOff) cfg.degradation.ct_pressure_ratio = 0.9;
  Switch sw(cfg);
  for (uint32_t p : {kAttackPort, kVictimPort, kNewRoute, kEstRoute})
    sw.add_port(p);

  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "priority=35, tcp, tp_dst=%u, actions=ct(zone=1,table=2)",
                kAttackService);
  std::string err = sw.add_flow(buf, 0);
  std::snprintf(buf, sizeof(buf),
                "priority=35, tcp, tp_dst=%u, actions=ct(zone=2,table=2)",
                kVictimService);
  err += sw.add_flow(buf, 0);
  std::snprintf(buf, sizeof(buf),
                "table=2, priority=30, ct_state=1, actions=output:%u",
                kNewRoute);
  err += sw.add_flow(buf, 0);
  std::snprintf(buf, sizeof(buf),
                "table=2, priority=30, ct_state=2, actions=output:%u",
                kEstRoute);
  err += sw.add_flow(buf, 0);
  if (!err.empty()) {
    std::fprintf(stderr, "rule install failed: %s\n", err.c_str());
    std::exit(2);
  }

  VirtualClock clock;
  Rng rng(P.seed);

  // Warmup: the victim zone's connections commit and send one packet each,
  // so their established-route megaflows are cached before the storm.
  clock.advance(kSecond);
  for (uint32_t v = 0; v < P.victim_conns; ++v)
    sw.ct_commit(conn_key(v, kVictimService, kVictimPort), 2, clock.now());
  for (uint32_t v = 0; v < P.victim_conns; ++v)
    sw.inject(Packet{conn_key(v, kVictimService, kVictimPort)}, clock.now());
  sw.handle_upcalls(clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());

  Outcome out;
  const double cpu0 = sw.cpu().user_cycles + sw.cpu().kernel_cycles;
  const uint64_t est0 = sw.port_stats(kEstRoute).tx_packets;

  // Storm: Zipf-churned attacker commits + first packets against the quiet
  // victim's steady established traffic.
  const auto zipf = [&]() -> uint32_t {
    const double u = rng.uniform_double();
    return static_cast<uint32_t>(
        static_cast<double>(P.conn_universe - 1) *
        std::pow(u, P.zipf_alpha));
  };
  for (size_t tick = 0; tick < P.ticks; ++tick) {
    for (size_t i = 0; i < P.attack_per_tick; ++i) {
      const uint32_t id = zipf();
      const FlowKey k = conn_key(id, kAttackService, kAttackPort);
      sw.ct_commit(k, 1, clock.now());
      sw.inject(Packet{k}, clock.now());
      if (rng.chance(P.remove_frac))
        sw.ct_remove(conn_key(zipf(), kAttackService, kAttackPort), 1);
    }
    for (size_t i = 0; i < P.victim_per_tick; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.uniform(P.victim_conns));
      sw.inject(Packet{conn_key(v, kVictimService, kVictimPort)}, clock.now());
    }
    sw.handle_upcalls(clock.now(), P.handler_budget);
    const uint64_t sz = sw.conntrack().size();
    out.ct_size_peak = std::max(out.ct_size_peak, sz);
    if (sz > P.ct_cap) out.bounded = false;
    clock.advance(kMillisecond);
    if ((tick + 1) % 50 == 0) sw.run_maintenance(clock.now());
  }

  out.cpu_cycles =
      sw.cpu().user_cycles + sw.cpu().kernel_cycles - cpu0;
  out.victim_est_delivered = sw.port_stats(kEstRoute).tx_packets - est0;
  for (uint32_t v = 0; v < P.victim_conns; ++v)
    if (sw.conntrack().lookup(conn_key(v, kVictimService, kVictimPort), 2) &
        ct_state::kEstablished)
      ++out.victim_survivors;

  const ConnTracker::Stats& cs = sw.conntrack().stats();
  out.committed = cs.committed;
  out.evicted = cs.evicted_zone_cap + cs.evicted_global_cap;
  out.pressure_engaged = sw.counters().ct_pressure_engaged;
  out.flows_at_end = sw.datapath().flow_count();

  const Switch::Counters& c = sw.counters();
  const Datapath::Stats& dp = sw.datapath().stats();
  out.fingerprint = {cs.committed,
                     cs.refreshed,
                     cs.removed,
                     cs.evicted_zone_cap,
                     cs.evicted_global_cap,
                     sw.conntrack().generation(),
                     static_cast<uint64_t>(sw.conntrack().size()),
                     c.flow_setups,
                     c.upcalls_handled,
                     c.upcalls_dropped,
                     c.flow_limit_backoffs,
                     c.ct_pressure_engaged,
                     c.evicted_flow_limit,
                     c.tx_packets,
                     dp.packets,
                     dp.misses,
                     out.victim_est_delivered,
                     out.flows_at_end,
                     out.ct_size_peak,
                     static_cast<uint64_t>(out.victim_survivors)};
  return out;
}

void print_row(Config cfg, const Outcome& o, const CostModel& cost) {
  std::printf("%-7s %10llu %10llu %8llu %7s %9zu %12.0f %8llu %7llu\n",
              config_name(cfg),
              static_cast<unsigned long long>(o.committed),
              static_cast<unsigned long long>(o.evicted),
              static_cast<unsigned long long>(o.ct_size_peak),
              o.bounded ? "yes" : "NO",
              o.victim_survivors, o.goodput(cost),
              static_cast<unsigned long long>(o.pressure_engaged),
              static_cast<unsigned long long>(o.flows_at_end));
}

void report_run(BenchReport& report, Config cfg, const Outcome& o,
                const CostModel& cost) {
  const std::map<std::string, std::string> params = {
      {"config", config_name(cfg)}};
  report.add("committed", static_cast<double>(o.committed), params);
  report.add("evicted", static_cast<double>(o.evicted), params);
  report.add("ct_size_peak", static_cast<double>(o.ct_size_peak), params);
  report.add("victim_survivors", static_cast<double>(o.victim_survivors),
             params);
  report.add("victim_goodput_pps", o.goodput(cost), params,
             o.victim_est_delivered);
  report.add("pressure_engaged", static_cast<double>(o.pressure_engaged),
             params);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Params P;
  if (flags.boolean("quick", false)) {
    P.conn_universe = 200'000;
    P.ticks = 300;
    P.attack_per_tick = 1000;
    P.victim_per_tick = 250;
  }
  P.conn_universe = flags.u64("conns", P.conn_universe);
  P.ticks = flags.u64("ticks", P.ticks);
  P.attack_per_tick = flags.u64("attack_per_tick", P.attack_per_tick);
  P.ct_cap = flags.u64("ct_cap", P.ct_cap);
  P.zipf_alpha = flags.f64("zipf_alpha", P.zipf_alpha);
  P.goodput_gate = flags.f64("goodput_gate", P.goodput_gate);
  P.seed = flags.u64("seed", P.seed);
  const CostModel cost;

  BenchReport report("conntrack_churn");
  std::printf("Conntrack churn: universe %zu conns (Zipf %.1f), cap %zu, "
              "%zu victim conns, %zu ticks x %zu commits\n",
              P.conn_universe, P.zipf_alpha, P.ct_cap, P.victim_conns,
              P.ticks, P.attack_per_tick);
  print_rule('=');
  std::printf("%-7s %10s %10s %8s %7s %9s %12s %8s %7s\n", "config",
              "committed", "evicted", "ct_peak", "bounded", "survivors",
              "goodput_pps", "engaged", "flows");
  print_rule();

  const Outcome off = run_churn(Config::kOff, P);
  print_row(Config::kOff, off, cost);
  report_run(report, Config::kOff, off, cost);
  const Outcome on = run_churn(Config::kOn, P);
  print_row(Config::kOn, on, cost);
  report_run(report, Config::kOn, on, cost);
  const Outcome unfair = run_churn(Config::kUnfair, P);
  print_row(Config::kUnfair, unfair, cost);
  report_run(report, Config::kUnfair, unfair, cost);
  const Outcome replay = run_churn(Config::kOn, P);
  print_rule();

  const bool gate_bounded = off.bounded && on.bounded && unfair.bounded &&
                            replay.bounded;
  const bool gate_fair = on.victim_survivors == P.victim_conns &&
                         off.victim_survivors == P.victim_conns &&
                         unfair.victim_survivors * 2 <= P.victim_conns;
  const double ratio =
      on.goodput(cost) / std::max(1e-9, off.goodput(cost));
  const bool gate_goodput =
      ratio >= P.goodput_gate && on.pressure_engaged >= 1;
  const bool deterministic = on.fingerprint == replay.fingerprint;

  std::printf("bounded memory (ct size <= %zu in all runs): %s\n", P.ct_cap,
              gate_bounded ? "PASS" : "FAIL");
  std::printf("eviction fairness: fair survivors %zu+%zu/%zu, unfair %zu "
              "[gate all/<=half: %s]\n",
              on.victim_survivors, off.victim_survivors, P.victim_conns,
              unfair.victim_survivors, gate_fair ? "PASS" : "FAIL");
  std::printf("victim goodput ratio (on / off): %.2fx, engaged %llu  "
              "[gate >= %.2f & engaged >= 1: %s]\n",
              ratio, static_cast<unsigned long long>(on.pressure_engaged),
              P.goodput_gate, gate_goodput ? "PASS" : "FAIL");
  std::printf("deterministic replay from seed %llu: %s\n",
              static_cast<unsigned long long>(P.seed),
              deterministic ? "PASS" : "FAIL");

  report.add("goodput_ratio", ratio);
  report.add("deterministic", deterministic ? 1 : 0);
  report.write();

  const bool pass =
      gate_bounded && gate_fair && gate_goodput && deterministic;
  if (pass) std::printf("PASS: all conntrack-churn gates met\n");
  return pass ? 0 : 1;
}
