// Quantifies the two-tier tag fast path's error rates under MAC churn in a
// large L2 domain (ROADMAP: flip `reval_mode` default once measured).
//
// The 64-bit Bloom tags (§6) are a *conservative* summary of which MAC
// bindings a megaflow's translation consulted: a changed binding always
// sets the bit the dependent flows recorded, so a tag miss proves the flow
// cannot have gone stale from MAC churn — but with thousands of MACs
// hashed into 64 bits, unrelated flows alias onto changed bits and pay
// unnecessary re-translations. Two rates, measured against a
// full-re-translation oracle on the identical dump:
//
//   * false-skip rate — flows the tag path skipped whose oracle verdict
//     was a repair or delete. This is the soundness number: it must be 0
//     (< 1e-4 gates the kTwoTier default flip).
//   * alias rate — flows the tag path re-translated whose oracle verdict
//     was "unchanged". Pure cost, no correctness impact; expected to be
//     substantial once the domain saturates the 64-bit tag space.
//
// Exit status: 0 iff the false-skip gate holds on every measured round.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ofproto/mac_learning.h"
#include "util/rng.h"
#include "vswitchd/revalidator.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

using benchutil::BenchReport;
using benchutil::Flags;
using benchutil::print_rule;

struct Params {
  size_t n_hosts = 2048;     // L2 domain size (32x the 64-bit tag space)
  size_t churn_per_round = 8;  // MAC migrations between revalidation passes
  size_t n_rounds = 24;
  uint64_t seed = 17;
};

Packet eth_pkt(EthAddr src, EthAddr dst, uint32_t in_port) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(src);
  p.key.set_eth_dst(dst);
  p.size_bytes = 100;
  return p;
}

struct Totals {
  uint64_t examined = 0;
  uint64_t skipped = 0;        // tag path: not re-translated
  uint64_t retranslated = 0;   // tag path: paid the full translation
  uint64_t necessary = 0;      // oracle: verdict was repair/delete
  uint64_t false_skips = 0;    // skipped but oracle wanted a change
  uint64_t aliased = 0;        // re-translated but oracle saw no change
  uint64_t tag_bits_max = 0;   // popcount of changed_tags (saturation)
};

bool oracle_changed(RevalDecision::Kind k) {
  return k == RevalDecision::Kind::kUpdateActions ||
         k == RevalDecision::Kind::kDeleteStale ||
         k == RevalDecision::Kind::kDeleteIdle;
}

Totals run_measurement(const Params& p) {
  SwitchConfig cfg;
  cfg.degradation.enabled = false;
  cfg.dynamic_flow_limit = false;
  cfg.idle_timeout_ns = ~uint64_t{0} / 2;  // no idle churn in this study
  Switch sw(cfg);
  sw.table(0).add_flow(Match{}, 0, OfActions().normal());

  // Hosts 0..n-1 on ports 100.., sequential locally-administered MACs —
  // realistic tag aliasing, unlike the distinct-tag MACs the unit tests
  // use to make tag hits exact.
  std::vector<EthAddr> macs;
  std::vector<uint32_t> port_of(p.n_hosts);
  for (size_t i = 0; i < p.n_hosts; ++i) {
    macs.push_back(EthAddr(0x020000000000ULL + 1 + i));
    port_of[i] = static_cast<uint32_t>(100 + i);
    sw.add_port(port_of[i]);
  }

  // Warm: every host talks to a fixed peer, both directions, so each host
  // contributes megaflows that depend on two MAC bindings.
  uint64_t now = kMillisecond;
  for (size_t i = 0; i < p.n_hosts; ++i) {
    const size_t j = (i * 7 + 1) % p.n_hosts;
    sw.inject(eth_pkt(macs[i], macs[j], port_of[i]), now);
    sw.inject(eth_pkt(macs[j], macs[i], port_of[j]), now);
    if ((i & 63) == 63) sw.handle_upcalls(now);
  }
  sw.handle_upcalls(now);
  now += kMillisecond;
  sw.run_maintenance(now);  // settle the warm-up generation bumps

  Rng rng(p.seed);
  Totals t;
  for (size_t round = 0; round < p.n_rounds; ++round) {
    // Churn: migrate hosts to fresh ports (VM moves); each re-learn marks
    // the binding's tag changed.
    now += kMillisecond;
    for (size_t k = 0; k < p.churn_per_round; ++k) {
      const size_t h = rng.uniform(p.n_hosts);
      port_of[h] = static_cast<uint32_t>(100 + p.n_hosts + round * 64 + k);
      sw.add_port(port_of[h]);
      sw.pipeline().mac_learning().learn(macs[h], 0, port_of[h], now);
    }

    // Oracle comparison: plan the same dump twice, tags vs full.
    const uint64_t changed =
        sw.pipeline().mac_learning().take_changed_tags();
    t.tag_bits_max =
        std::max<uint64_t>(t.tag_bits_max, __builtin_popcountll(changed));
    const std::vector<DpBackend::FlowRef> flows = sw.backend().dump();
    Revalidator::Config rc;
    rc.n_threads = 1;
    rc.idle_ns = cfg.idle_timeout_ns;
    rc.maybe_stale = true;
    std::vector<RevalDecision> tags_plan, full_plan;
    rc.use_tags = true;
    rc.changed_tags = changed;
    Revalidator::plan(sw.backend(), sw.pipeline(), flows, now, rc,
                      &tags_plan);
    rc.use_tags = false;
    Revalidator::plan(sw.backend(), sw.pipeline(), flows, now, rc,
                      &full_plan);

    for (size_t i = 0; i < flows.size(); ++i) {
      ++t.examined;
      const bool skipped =
          tags_plan[i].kind == RevalDecision::Kind::kSkipTags;
      const bool changed_oracle = oracle_changed(full_plan[i].kind);
      t.skipped += skipped;
      t.retranslated += !skipped;
      t.necessary += changed_oracle;
      t.false_skips += skipped && changed_oracle;
      t.aliased += !skipped && !changed_oracle;
    }

    // Repair through the switch's own full pass so staleness never
    // accumulates across rounds (each round measures one churn batch).
    now += kMillisecond;
    sw.run_maintenance(now);
  }
  return t;
}

}  // namespace
}  // namespace ovs

int main(int argc, char** argv) {
  using namespace ovs;
  Flags flags(argc, argv);
  Params p;
  if (flags.boolean("quick", false)) {
    p.n_hosts = 512;
    p.n_rounds = 8;
  }
  p.n_hosts = flags.u64("hosts", p.n_hosts);
  p.churn_per_round = flags.u64("churn", p.churn_per_round);
  p.n_rounds = flags.u64("rounds", p.n_rounds);
  p.seed = flags.u64("seed", p.seed);

  const Totals t = run_measurement(p);
  const Totals t2 = run_measurement(p);  // determinism check

  const double denom = t.examined ? static_cast<double>(t.examined) : 1.0;
  const double false_skip_rate = static_cast<double>(t.false_skips) / denom;
  const double alias_rate = static_cast<double>(t.aliased) / denom;
  const double skip_frac = static_cast<double>(t.skipped) / denom;

  print_rule('=');
  std::printf("bench_tag_alias: %zu hosts, %zu migrations/round, %zu "
              "rounds (seed %llu)\n",
              p.n_hosts, p.churn_per_round, p.n_rounds,
              static_cast<unsigned long long>(p.seed));
  print_rule();
  std::printf("flow-rounds examined      %llu\n",
              static_cast<unsigned long long>(t.examined));
  std::printf("tag path skipped          %llu (%.1f%%)\n",
              static_cast<unsigned long long>(t.skipped),
              100.0 * skip_frac);
  std::printf("oracle wanted a change    %llu\n",
              static_cast<unsigned long long>(t.necessary));
  std::printf("false skips (unsound)     %llu (rate %.2e)\n",
              static_cast<unsigned long long>(t.false_skips),
              false_skip_rate);
  std::printf("aliased re-translations   %llu (rate %.3f)\n",
              static_cast<unsigned long long>(t.aliased), alias_rate);
  std::printf("peak changed-tag bits     %llu / 64\n",
              static_cast<unsigned long long>(t.tag_bits_max));

  const bool gate_sound = false_skip_rate < 1e-4;
  const bool gate_deterministic = t.false_skips == t2.false_skips &&
                                  t.skipped == t2.skipped &&
                                  t.aliased == t2.aliased;
  print_rule();
  std::printf("[%s] false-skip rate %.2e < 1e-4\n",
              gate_sound ? "PASS" : "FAIL", false_skip_rate);
  std::printf("[%s] measurement deterministic across replays\n",
              gate_deterministic ? "PASS" : "FAIL");
  print_rule('=');

  BenchReport report("tag_alias");
  const std::map<std::string, std::string> params = {
      {"hosts", std::to_string(p.n_hosts)},
      {"churn", std::to_string(p.churn_per_round)},
      {"rounds", std::to_string(p.n_rounds)},
      {"seed", std::to_string(p.seed)}};
  report.add("examined", static_cast<double>(t.examined), params);
  report.add("skip_fraction", skip_frac, params);
  report.add("false_skip_rate", false_skip_rate, params);
  report.add("alias_rate", alias_rate, params);
  report.add("peak_changed_tag_bits", static_cast<double>(t.tag_bits_max),
             params);
  report.write();
  return gate_sound && gate_deterministic ? 0 : 1;
}
