// Ablations for design choices the paper calls out but does not table:
//
//   A. Upcall batching (§4.1: "batching flow setups that arrive together
//      improved flow setup performance about 24%").
//   B. Tag-based (Bloom filter) vs. full revalidation (§6: tags were
//      abandoned once false positives made most flows revalidate anyway —
//      we measure both the win in the sparse-change regime and the decay
//      as changes accumulate).
//   C. Microflow cache (EMC) sizing: hit rate vs. active connections.
//   D. The §7.1 ICMP/port-trie bug: megaflow population with the bug
//      injected vs. fixed.
#include <cstdio>

#include "bench_common.h"
#include "sim/clock.h"
#include "workload/table_gen.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

Packet conn_packet(uint16_t sport, uint16_t dport = 9000) {
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 1));
  p.key.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 2));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(10, 1, 0, 1));
  p.key.set_nw_dst(Ipv4(9, 1, 1, 2));
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  return p;
}

void ablation_batching(BenchReport& report) {
  std::printf("\nA. Upcall batching (burst of concurrent misses)\n");
  print_rule();
  std::printf("%-12s %22s %14s\n", "mode", "user cycles per setup",
              "improvement");
  double per_setup[2] = {0, 0};
  int idx = 0;
  for (bool batching : {false, true}) {
    SwitchConfig cfg;
    cfg.batching = batching;
    cfg.upcall_batch = 64;
    // Force per-connection megaflows so every connection is a flow setup.
    cfg.megaflows_enabled = false;
    Switch sw(cfg);
    sw.add_port(1);
    sw.add_port(2);
    install_paper_microbench_table(sw, 2);
    const size_t kConns = 20000;
    size_t setups = 0;
    for (size_t burst = 0; burst < kConns / 64; ++burst) {
      for (size_t i = 0; i < 64; ++i)
        sw.inject(conn_packet(static_cast<uint16_t>(1024 + burst * 64 + i)),
                  0);
      setups += sw.handle_upcalls(0);
    }
    per_setup[idx] = sw.cpu().user_cycles / static_cast<double>(setups);
    report.add("user_cycles_per_setup", per_setup[idx],
               {{"ablation", "upcall_batching"},
                {"mode", batching ? "batched" : "unbatched"}},
               setups);
    std::printf("%-12s %22.0f %13.1f%%\n",
                batching ? "batched" : "unbatched", per_setup[idx],
                idx == 0 ? 0.0
                         : 100.0 * (per_setup[0] - per_setup[1]) /
                               per_setup[0]);
    ++idx;
  }
  std::printf("(paper: batching improved flow setup by about 24%%)\n");
  report.add("improvement_pct",
             100.0 * (per_setup[0] - per_setup[1]) / per_setup[0],
             {{"ablation", "upcall_batching"}});
}

void ablation_revalidation(BenchReport& report) {
  std::printf("\nB. Tag-based vs. full revalidation (NORMAL flows, one MAC "
              "moves)\n");
  print_rule();
  std::printf("%-8s %10s %14s %16s %18s\n", "mode", "flows", "MAC moves",
              "re-translations", "user cycles/reval");
  for (size_t moves : {1UL, 8UL, 32UL}) {
    for (RevalidationMode mode :
         {RevalidationMode::kFull, RevalidationMode::kTags}) {
      SwitchConfig cfg;
      cfg.reval_mode = mode;
      Switch sw(cfg);
      for (uint32_t p = 1; p <= 3; ++p) sw.add_port(p);
      sw.table(0).add_flow(Match{}, 0, OfActions().normal());
      VirtualClock clock;
      // Build a population of NORMAL megaflows across many MAC pairs.
      const size_t kPairs = 2000;
      for (size_t i = 0; i < kPairs; ++i) {
        Packet p;
        p.key.set_in_port(1 + (i % 2));
        p.key.set_eth_src(EthAddr(0x020000000000ULL | (i * 2)));
        p.key.set_eth_dst(EthAddr(0x020000000000ULL | (i * 2 + 1)));
        p.key.set_eth_type(ethertype::kIpv4);
        sw.inject(p, clock.now());
        sw.handle_upcalls(clock.now());
        // Teach the switch where the dst lives so flows actually forward.
        Packet r;
        r.key.set_in_port(3);
        r.key.set_eth_src(EthAddr(0x020000000000ULL | (i * 2 + 1)));
        r.key.set_eth_dst(EthAddr(0x020000000000ULL | (i * 2)));
        r.key.set_eth_type(ethertype::kIpv4);
        sw.inject(r, clock.now());
        sw.handle_upcalls(clock.now());
      }
      clock.advance(kSecond);
      sw.run_maintenance(clock.now());  // absorb learning churn

      // `moves` MACs move to another port.
      for (size_t i = 0; i < moves; ++i) {
        Packet m;
        m.key.set_in_port(2);
        m.key.set_eth_src(EthAddr(0x020000000000ULL | (i * 64 + 1)));
        m.key.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0x99, 0x99));
        m.key.set_eth_type(ethertype::kIpv4);
        sw.inject(m, clock.now());
        sw.handle_upcalls(clock.now());
      }
      const double user0 = sw.cpu().user_cycles;
      const uint64_t skipped0 = sw.counters().reval_skipped_by_tags;
      const uint64_t examined0 = sw.counters().reval_flows_examined;
      clock.advance(kSecond);
      sw.run_maintenance(clock.now());
      const uint64_t examined =
          sw.counters().reval_flows_examined - examined0;
      const uint64_t retranslated =
          examined - (sw.counters().reval_skipped_by_tags - skipped0);
      std::printf("%-8s %10zu %14zu %16llu %18.0f\n",
                  mode == RevalidationMode::kTags ? "tags" : "full",
                  sw.datapath().flow_count(), moves,
                  static_cast<unsigned long long>(retranslated),
                  sw.cpu().user_cycles - user0);
      report.add("retranslations", static_cast<double>(retranslated),
                 {{"ablation", "revalidation"},
                  {"mode", mode == RevalidationMode::kTags ? "tags" : "full"},
                  {"mac_moves", std::to_string(moves)}});
    }
  }
  std::printf("(§6: tags win when changes are rare; Bloom false positives\n"
              " erode the win as changes accumulate, which led OVS to drop\n"
              " tags for always-full revalidation)\n");
}

void ablation_emc_sizing(BenchReport& report) {
  std::printf("\nC. Microflow cache sizing (hit rate vs. active "
              "connections)\n");
  print_rule();
  std::printf("%12s | %10s %10s %10s\n", "connections", "EMC 1k", "EMC 8k",
              "EMC 64k");
  for (size_t conns : {512UL, 4096UL, 32768UL}) {
    std::printf("%12zu |", conns);
    for (size_t slots : {1024UL, 8192UL, 65536UL}) {
      DatapathConfig cfg;
      cfg.microflow_sets = slots / 2;
      cfg.microflow_ways = 2;
      Datapath dp(cfg);
      dp.install(MatchBuilder().ip(), DpActions().output(2), 0);
      Rng rng(slots + conns);
      // Round-robin over `conns` live connections.
      for (size_t i = 0; i < conns * 8; ++i) {
        Packet p = conn_packet(static_cast<uint16_t>(i % conns),
                               static_cast<uint16_t>(1000 + (i % conns) / 60000));
        dp.receive(p, i);
      }
      const auto& s = dp.stats();
      const double hit = static_cast<double>(s.microflow_hits) /
                         static_cast<double>(s.packets);
      std::printf(" %9.1f%%", 100 * hit);
      report.add("emc_hit_rate_pct", 100 * hit,
                 {{"ablation", "emc_sizing"},
                  {"connections", std::to_string(conns)},
                  {"emc_slots", std::to_string(slots)}},
                 conns * 8);
    }
    std::printf("\n");
  }
  std::printf("(the EMC only needs to cover the active working set; §4.2)\n");
}

void ablation_icmp_bug(BenchReport& report) {
  std::printf("\nD. The 7.1 ICMP/port-trie bug: megaflows per 1000 "
              "connections\n");
  print_rule();
  for (bool bug : {false, true}) {
    SwitchConfig cfg;
    cfg.classifier.icmp_port_trie_bug = bug;
    Switch sw(cfg);
    sw.add_port(1);
    sw.add_port(2);
    // An ACL table with both a TCP port ACL and an ICMP ACL.
    sw.table(0).add_flow(MatchBuilder().tcp().tp_dst(25), 100,
                         OfActions::drop());
    sw.table(0).add_flow(MatchBuilder().icmp().icmp_type(3).icmp_code(4), 90,
                         OfActions::drop());
    sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));
    // Clients hitting 1000 distinct services: with the port tries healthy,
    // prefix tracking keeps megaflows covering whole port ranges.
    for (uint16_t i = 0; i < 1000; ++i) {
      sw.inject(conn_packet(static_cast<uint16_t>(30000 + i),
                            static_cast<uint16_t>(2048 + i * 13)),
                0);
      sw.handle_upcalls(0);
    }
    std::printf("  %-18s %6zu megaflows\n", bug ? "bug injected:" : "fixed:",
                sw.datapath().flow_count());
    report.add("megaflows_per_1k_conns",
               static_cast<double>(sw.datapath().flow_count()),
               {{"ablation", "icmp_port_trie_bug"},
                {"bug", bug ? "injected" : "fixed"}});
  }
  std::printf("(with the bug, every TCP connection needs its own megaflow —\n"
              " the source of the >100%% CPU outliers in Figure 7)\n");
}

}  // namespace

int main(int, char**) {
  BenchReport report("ablations");
  std::printf("Ablation benches for design choices called out in the "
              "paper\n");
  print_rule('=');
  ablation_batching(report);
  ablation_revalidation(report);
  ablation_emc_sizing(report);
  ablation_icmp_bug(report);
  return 0;
}
