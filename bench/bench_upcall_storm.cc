// Upcall-storm robustness bench: one adversarial port floods the slow path
// with fresh connections (a port scan / SYN flood — every packet a new
// 5-tuple, so every packet is a flow setup) while three victim ports carry
// ordinary churning traffic through a ct pipeline that installs
// per-connection megaflows.
//
// Two configurations run the identical offered load:
//
//   hardened  — bounded per-port fair upcall queue + graceful-degradation
//               policies (the defaults);
//   ablation  — historical FIFO upcall queue (fair=false) with degradation
//               policies disabled: the storm and the victims share one
//               unbounded-order queue and a single global cap.
//
// Gates (exit non-zero on failure, so CI can run this as a check):
//   1. hardened victim goodput >= 2x the ablation's during the storm;
//   2. every victim port's flow-setup share within 25% of the victim mean
//      (the fair-dequeue guarantee);
//   3. the hardened run is deterministic: two runs from the same seed
//      produce identical counters.
//
// Goodput is delivered victim packets per simulated second during the storm
// window: a victim packet is lost only if its flow setup was refused by the
// overloaded slow path (misses that reach a handler are forwarded when
// handled).
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/clock.h"
#include "util/rng.h"
#include "vswitchd/switch.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

constexpr uint32_t kStormPort = 1;
constexpr std::array<uint32_t, 3> kVictimPorts = {2, 3, 4};
// Each ingress port forwards to its own egress port so delivered packets
// can be attributed per source.
constexpr uint32_t egress_of(uint32_t in) { return 10 + in; }

struct Params {
  double sim_seconds = 10;
  double storm_from = 1;       // storm window [from, to) in seconds
  double storm_to = 9;
  size_t storm_pps = 32000;    // every packet a fresh connection
  size_t victim_pps = 2000;    // per victim port
  size_t victim_conns = 300;   // live connections per victim port
  double victim_churn = 600;   // connections replaced / s / port (short-lived)
  size_t handler_budget = 16;  // upcalls serviced per 1 ms tick
  uint64_t seed = 7;
};

struct Outcome {
  // Storm-window deltas.
  uint64_t victim_offered = 0;
  uint64_t victim_delivered = 0;
  uint64_t storm_offered = 0;
  uint64_t storm_delivered = 0;
  std::array<uint64_t, 3> victim_installs{};
  // Whole-run robustness counters.
  uint64_t upcalls_dropped = 0;
  uint64_t upcalls_retried = 0;
  uint64_t flow_limit_backoffs = 0;
  uint64_t emc_degrade_engaged = 0;
  uint64_t reval_overruns = 0;
  uint64_t flows_at_end = 0;
  // Every counter that must replay identically from a fixed seed.
  std::vector<uint64_t> fingerprint;

  double victim_goodput(const Params& p) const {
    return static_cast<double>(victim_delivered) /
           (p.storm_to - p.storm_from);
  }
};

struct VictimState {
  struct Conn {
    Ipv4 src{0};
    uint16_t sport = 0;
  };
  std::vector<Conn> conns;
  double churn_carry = 0;
};

Packet make_packet(uint32_t in_port, Ipv4 src, uint16_t sport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(src);
  p.key.set_nw_dst(Ipv4(9, 9, 9, 9));
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(80);
  return p;
}

Outcome run_storm(bool hardened, const Params& P) {
  SwitchConfig cfg;
  cfg.upcall_queue.fair = hardened;
  cfg.upcall_queue.per_port_quota = 512;
  cfg.upcall_queue.global_cap = 4096;
  cfg.degradation.enabled = hardened;
  cfg.flow_limit = 50000;
  Switch sw(cfg);
  sw.add_port(kStormPort);
  for (uint32_t p : kVictimPorts) sw.add_port(p);

  // ct pipeline: table 0 tracks (and commits) the connection — the 5-tuple
  // is consulted, so the resulting megaflow is per-connection — then table 1
  // forwards by ingress port.
  sw.table(0).add_flow(MatchBuilder().tcp(), 10,
                       OfActions().ct(/*next_table=*/1, /*commit=*/true));
  sw.table(1).add_flow(MatchBuilder().in_port(kStormPort), 10,
                       OfActions().output(egress_of(kStormPort)));
  for (uint32_t p : kVictimPorts)
    sw.table(1).add_flow(MatchBuilder().in_port(p), 10,
                         OfActions().output(egress_of(p)));

  Rng rng(P.seed);
  std::array<VictimState, 3> victims;
  for (size_t v = 0; v < victims.size(); ++v) {
    victims[v].conns.resize(P.victim_conns);
    for (auto& c : victims[v].conns) {
      c.src = Ipv4(10, static_cast<uint8_t>(20 + v),
                   static_cast<uint8_t>(rng.uniform(256)),
                   static_cast<uint8_t>(rng.uniform(256)));
      c.sport = static_cast<uint16_t>(rng.range(1024, 65535));
    }
  }
  // The storm's fresh-connection generator: a counter walked through a
  // disjoint address block so no 5-tuple ever repeats within the run.
  uint64_t storm_seq = 0;

  VirtualClock clock;
  constexpr uint64_t kTick = kMillisecond;
  const auto ticks = static_cast<size_t>(P.sim_seconds * 1000.0);
  const auto storm_first = static_cast<size_t>(P.storm_from * 1000.0);
  const auto storm_last = static_cast<size_t>(P.storm_to * 1000.0);

  Outcome out;
  uint64_t victim_tx0 = 0, storm_tx0 = 0;
  std::array<uint64_t, 3> installs0{};

  for (size_t tick = 0; tick < ticks; ++tick) {
    const bool storm_on = tick >= storm_first && tick < storm_last;
    if (tick == storm_first) {
      for (size_t v = 0; v < victims.size(); ++v)
        installs0[v] = sw.port_upcall_stats(kVictimPorts[v]).installs;
      for (uint32_t p : kVictimPorts)
        victim_tx0 += sw.port_stats(egress_of(p)).tx_packets;
      storm_tx0 = sw.port_stats(egress_of(kStormPort)).tx_packets;
    }

    if (storm_on) {
      const size_t n = P.storm_pps / 1000;
      for (size_t i = 0; i < n; ++i, ++storm_seq) {
        const Ipv4 src(172, static_cast<uint8_t>(16 + (storm_seq >> 22)),
                       static_cast<uint8_t>(storm_seq >> 14),
                       static_cast<uint8_t>(storm_seq >> 6));
        const auto sport = static_cast<uint16_t>(1024 + (storm_seq & 0x3F));
        sw.inject(make_packet(kStormPort, src, sport), clock.now());
      }
      out.storm_offered += n;
    }
    for (size_t v = 0; v < victims.size(); ++v) {
      VictimState& vs = victims[v];
      vs.churn_carry += P.victim_churn / 1000.0;
      while (vs.churn_carry >= 1.0) {
        vs.churn_carry -= 1.0;
        auto& c = vs.conns[rng.uniform(vs.conns.size())];
        c.src = Ipv4(10, static_cast<uint8_t>(20 + v),
                     static_cast<uint8_t>(rng.uniform(256)),
                     static_cast<uint8_t>(rng.uniform(256)));
        c.sport = static_cast<uint16_t>(rng.range(1024, 65535));
      }
      const size_t n = P.victim_pps / 1000;
      for (size_t i = 0; i < n; ++i) {
        const auto& c = vs.conns[rng.uniform(vs.conns.size())];
        sw.inject(make_packet(kVictimPorts[v], c.src, c.sport), clock.now());
      }
      if (storm_on) out.victim_offered += n;
    }

    sw.handle_upcalls(clock.now(), P.handler_budget);
    clock.advance(kTick);
    if ((tick + 1) % 1000 == 0) sw.run_maintenance(clock.now());

    // Close the measurement window when the storm ends: deliveries and
    // installs are counted over exactly the interval the offers were.
    if (tick + 1 == storm_last) {
      uint64_t victim_tx1 = 0;
      for (uint32_t p : kVictimPorts)
        victim_tx1 += sw.port_stats(egress_of(p)).tx_packets;
      out.victim_delivered = victim_tx1 - victim_tx0;
      out.storm_delivered =
          sw.port_stats(egress_of(kStormPort)).tx_packets - storm_tx0;
      for (size_t v = 0; v < victims.size(); ++v)
        out.victim_installs[v] =
            sw.port_upcall_stats(kVictimPorts[v]).installs - installs0[v];
    }
  }

  const Switch::Counters& c = sw.counters();
  out.upcalls_dropped = c.upcalls_dropped;
  out.upcalls_retried = c.upcalls_retried;
  out.flow_limit_backoffs = c.flow_limit_backoffs;
  out.emc_degrade_engaged = c.emc_degrade_engaged;
  out.reval_overruns = c.reval_overruns;
  out.flows_at_end = sw.datapath().flow_count();
  const Datapath::Stats& d = sw.datapath().stats();
  out.fingerprint = {c.flow_setups,      c.setup_dups,
                     c.install_fails,    c.upcalls_handled,
                     c.upcalls_dropped,  c.upcalls_retried,
                     c.retry_abandoned,  c.flow_limit_backoffs,
                     c.reval_overruns,   c.emc_degrade_engaged,
                     c.evicted_flow_limit, c.tx_packets,
                     d.packets,          d.misses,
                     d.upcall_drops,     d.emc_insert_skips,
                     out.flows_at_end,   out.victim_delivered};
  return out;
}

void print_outcome(const char* name, const Outcome& o, const Params& P) {
  const double vd = 100.0 * static_cast<double>(o.victim_delivered) /
                    static_cast<double>(o.victim_offered);
  std::printf("%-10s %10.0f %7.1f%% %9llu %9llu %8llu %8llu %7llu\n", name,
              o.victim_goodput(P), vd,
              static_cast<unsigned long long>(o.upcalls_dropped),
              static_cast<unsigned long long>(o.upcalls_retried),
              static_cast<unsigned long long>(o.flow_limit_backoffs),
              static_cast<unsigned long long>(o.emc_degrade_engaged),
              static_cast<unsigned long long>(o.flows_at_end));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Params P;
  if (flags.boolean("quick", false)) {
    P.sim_seconds = 3;
    P.storm_from = 0.5;
    P.storm_to = 2.5;
  }
  P.sim_seconds = flags.f64("seconds", P.sim_seconds);
  P.storm_pps = flags.u64("storm_pps", P.storm_pps);
  P.victim_pps = flags.u64("victim_pps", P.victim_pps);
  P.handler_budget = flags.u64("budget", P.handler_budget);
  P.seed = flags.u64("seed", P.seed);

  BenchReport report("upcall_storm");
  std::printf("Upcall storm: port %u floods %zu fresh conns/s; victims %zu "
              "pps each, %.0f conns/s churn; handler budget %zu/ms\n",
              kStormPort, P.storm_pps, P.victim_pps, P.victim_churn,
              P.handler_budget);
  print_rule('=');
  std::printf("%-10s %10s %8s %9s %9s %8s %8s %7s\n", "config",
              "victim_pps", "deliv%", "drops", "retries", "backoff",
              "emc_deg", "flows");
  print_rule();

  const Outcome hardened = run_storm(true, P);
  const Outcome replay = run_storm(true, P);
  const Outcome ablation = run_storm(false, P);
  print_outcome("hardened", hardened, P);
  print_outcome("fifo_off", ablation, P);
  print_rule();

  const double ratio = hardened.victim_goodput(P) /
                       std::max(1.0, ablation.victim_goodput(P));

  // Fairness: each victim port's storm-window install share vs. their mean.
  uint64_t total_installs = 0;
  for (uint64_t i : hardened.victim_installs) total_installs += i;
  const double mean =
      static_cast<double>(total_installs) /
      static_cast<double>(hardened.victim_installs.size());
  double worst_dev = 0;
  for (uint64_t i : hardened.victim_installs)
    worst_dev = std::max(worst_dev,
                         std::abs(static_cast<double>(i) - mean) / mean);

  const bool deterministic = hardened.fingerprint == replay.fingerprint;
  const bool gate_goodput = ratio >= 2.0;
  const bool gate_fair = worst_dev <= 0.25;

  std::printf("victim goodput ratio (hardened / ablation): %.2fx  "
              "[gate >= 2.0: %s]\n", ratio, gate_goodput ? "PASS" : "FAIL");
  std::printf("victim install share worst deviation: %.1f%%  "
              "[gate <= 25%%: %s]\n", 100 * worst_dev,
              gate_fair ? "PASS" : "FAIL");
  std::printf("deterministic replay from seed %llu: %s\n",
              static_cast<unsigned long long>(P.seed),
              deterministic ? "PASS" : "FAIL");

  for (const auto* o : {&hardened, &ablation}) {
    const std::string series = o == &hardened ? "hardened" : "degradation_off";
    report.add("victim_goodput_pps", o->victim_goodput(P),
               {{"series", series}}, o->victim_offered);
    report.add("victim_delivery_frac",
               static_cast<double>(o->victim_delivered) /
                   static_cast<double>(o->victim_offered),
               {{"series", series}});
    report.add("upcalls_dropped", static_cast<double>(o->upcalls_dropped),
               {{"series", series}});
    report.add("upcalls_retried", static_cast<double>(o->upcalls_retried),
               {{"series", series}});
    report.add("flow_limit_backoffs",
               static_cast<double>(o->flow_limit_backoffs),
               {{"series", series}});
  }
  report.add("goodput_ratio", ratio);
  report.add("install_share_worst_dev", worst_dev);
  report.add("deterministic", deterministic ? 1 : 0);
  for (size_t v = 0; v < hardened.victim_installs.size(); ++v)
    report.add("victim_installs",
               static_cast<double>(hardened.victim_installs[v]),
               {{"series", "hardened"},
                {"port", std::to_string(kVictimPorts[v])}});
  report.write();

  return gate_goodput && gate_fair && deterministic ? 0 : 1;
}
