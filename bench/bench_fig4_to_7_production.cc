// Reproduces the production study of §7.1 — Figures 4, 5, 6 and 7 — on the
// simulated hypervisor fleet (see src/sim/fleet.h for the substitution
// rationale). One run of the fleet produces all four figures:
//
//   Figure 4: CDF of min/mean/max megaflow counts per hypervisor
//             (paper: 50% of hypervisors had mean <= 107 flows; 99th pct of
//              the max was 7,033)
//   Figure 5: CDF of cache hit rates over measurement intervals, overall /
//             busiest quartile / slowest quartile (paper: 97.7% overall,
//             98.0% busiest, 74.7% slowest)
//   Figure 6: CDF of cache-hit and miss (flow setup) packet rates
//             (paper: 99% of hypervisors < 79k hit-pps, < 1.5k miss-pps)
//   Figure 7: userspace CPU% as a function of misses/s, with the ICMP
//             prefix-tracking outliers in the upper right corner
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "sim/fleet.h"
#include "util/stats.h"

using namespace ovs;
using namespace ovs::benchutil;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FleetConfig cfg;
  cfg.n_hypervisors = flags.u64("hypervisors", 150);
  cfg.n_intervals = flags.u64("intervals", 10);
  cfg.sim_seconds_per_interval = flags.f64("sim_seconds", 1.0);
  cfg.seed = flags.u64("seed", 42);
  // >1 drives every hypervisor switch through the batched fast path.
  cfg.rx_batch = flags.u64("rx_batch", 1);
  BenchReport report("fig4_to_7_production");
  const std::map<std::string, std::string> params = {
      {"hypervisors", std::to_string(cfg.n_hypervisors)},
      {"intervals", std::to_string(cfg.n_intervals)},
      {"rx_batch", std::to_string(cfg.rx_batch)}};

  std::printf("Simulating %zu hypervisors x %zu intervals...\n",
              cfg.n_hypervisors, cfg.n_intervals);
  FleetResults fleet = run_fleet(cfg);

  // ---- Figure 4 -------------------------------------------------------
  Distribution fmin, fmean, fmax;
  for (const FleetHypervisor& hv : fleet.hypervisors) {
    fmin.add(hv.flows_min);
    fmean.add(hv.flows_mean);
    fmax.add(hv.flows_max);
  }
  std::printf("\nFigure 4: megaflow flow counts per hypervisor (CDF)\n");
  print_rule('=');
  std::printf("%12s %10s %10s %10s\n", "percentile", "min", "mean", "max");
  print_rule();
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0})
    std::printf("%11.0f%% %10.0f %10.0f %10.0f\n", p, fmin.percentile(p),
                fmean.percentile(p), fmax.percentile(p));
  std::printf("shape check: median mean-flow-count O(100); max tail "
              "O(1000s)\n");
  report.add("fig4_median_mean_flows", fmean.percentile(50.0), params);
  report.add("fig4_p99_max_flows", fmax.percentile(99.0), params);

  // ---- Figure 5 -------------------------------------------------------
  // Rank steady-state intervals by forwarded packets; quartiles by volume.
  std::vector<const FleetInterval*> steady;
  for (const FleetInterval& iv : fleet.intervals)
    if (iv.interval > 0) steady.push_back(&iv);
  std::sort(steady.begin(), steady.end(),
            [](const FleetInterval* a, const FleetInterval* b) {
              return a->hit_pps + a->miss_pps < b->hit_pps + b->miss_pps;
            });
  Distribution hit_all, hit_busy, hit_slow;
  double weighted_hits = 0, weighted_total = 0;
  for (size_t i = 0; i < steady.size(); ++i) {
    const FleetInterval& iv = *steady[i];
    hit_all.add(iv.hit_rate);
    if (i < steady.size() / 4) hit_slow.add(iv.hit_rate);
    if (i >= steady.size() - steady.size() / 4) hit_busy.add(iv.hit_rate);
    weighted_hits += iv.hit_pps;
    weighted_total += iv.hit_pps + iv.miss_pps;
  }
  std::printf("\nFigure 5: cache hit rates over measurement intervals\n");
  print_rule('=');
  std::printf("overall traffic-weighted hit rate: %.2f%%  (paper: 97.7%%)\n",
              100.0 * weighted_hits / weighted_total);
  std::printf("%12s %10s %12s %12s\n", "percentile", "all", "busiest-25%",
              "slowest-25%");
  print_rule();
  for (double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0})
    std::printf("%11.0f%% %9.1f%% %11.1f%% %11.1f%%\n", p,
                100 * hit_all.percentile(p), 100 * hit_busy.percentile(p),
                100 * hit_slow.percentile(p));
  std::printf("shape check: busiest quartile hit rate >= overall >> "
              "slowest quartile\n");
  report.add("fig5_weighted_hit_rate_pct",
             100.0 * weighted_hits / weighted_total, params,
             steady.size());

  // ---- Figure 6 -------------------------------------------------------
  Distribution hit_rates_hv, miss_rates_hv;
  {
    std::vector<double> hsum(cfg.n_hypervisors, 0), msum(cfg.n_hypervisors, 0);
    std::vector<int> cnt(cfg.n_hypervisors, 0);
    for (const FleetInterval& iv : fleet.intervals) {
      if (iv.interval == 0) continue;
      hsum[iv.hypervisor] += iv.hit_pps;
      msum[iv.hypervisor] += iv.miss_pps;
      ++cnt[iv.hypervisor];
    }
    for (size_t h = 0; h < cfg.n_hypervisors; ++h) {
      if (cnt[h] == 0) continue;
      hit_rates_hv.add(hsum[h] / cnt[h]);
      miss_rates_hv.add(msum[h] / cnt[h]);
    }
  }
  std::printf("\nFigure 6: cache hit and miss packet rates per hypervisor "
              "(CDF)\n");
  print_rule('=');
  std::printf("%12s %14s %16s\n", "percentile", "hit pkts/s",
              "miss (setups)/s");
  print_rule();
  for (double p : {25.0, 50.0, 75.0, 90.0, 99.0, 100.0})
    std::printf("%11.0f%% %14.0f %16.1f\n", p, hit_rates_hv.percentile(p),
                miss_rates_hv.percentile(p));
  std::printf("shape check: hit-rate tail O(10k-100k) pps; misses orders of "
              "magnitude lower\n");
  report.add("fig6_p99_hit_pps", hit_rates_hv.percentile(99.0), params);
  report.add("fig6_p99_miss_pps", miss_rates_hv.percentile(99.0), params);

  // ---- Figure 7 -------------------------------------------------------
  std::printf("\nFigure 7: userspace CPU%% vs misses/s (log-bucketed "
              "scatter)\n");
  print_rule('=');
  std::printf("%18s %10s %12s %12s %8s\n", "misses/s bucket", "samples",
              "mean CPU%", "max CPU%", "outlier");
  print_rule();
  struct Bucket {
    double lo, hi;
    Distribution cpu;
    int outliers = 0;
  };
  std::vector<Bucket> buckets;
  for (double lo = 1; lo < 200000; lo *= 4)
    buckets.push_back(Bucket{lo, lo * 4, {}, 0});
  Distribution all_cpu;
  for (const FleetInterval& iv : fleet.intervals) {
    if (iv.interval == 0) continue;
    all_cpu.add(iv.user_cpu_pct);
    for (Bucket& b : buckets)
      if (iv.miss_pps >= b.lo && iv.miss_pps < b.hi) {
        b.cpu.add(iv.user_cpu_pct);
        if (iv.outlier) ++b.outliers;
      }
  }
  for (const Bucket& b : buckets) {
    if (b.cpu.count() == 0) continue;
    std::printf("%8.0f - %-8.0f %10zu %11.1f%% %11.1f%% %8s\n", b.lo, b.hi,
                b.cpu.count(), b.cpu.mean(), b.cpu.max(),
                b.outliers > 0 ? "yes" : "");
  }
  print_rule();
  std::printf("fraction of hypervisor-intervals with user CPU <= 5%%: "
              "%.0f%%  (paper: 80%% of hypervisors <= 5%%)\n",
              100.0 * all_cpu.cdf(5.0));
  std::printf("shape check: CPU%% grows with misses/s; ICMP-bug outliers "
              "occupy the top-right\n");
  report.add("fig7_frac_under_5pct_cpu", all_cpu.cdf(5.0), params,
             all_cpu.count());
  return 0;
}
