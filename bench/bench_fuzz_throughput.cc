// Differential-fuzzing throughput bench: how many generated scenarios (and
// scenario events) per second the harness sustains when replaying against
// the full 8-configuration matrix. This is the number that sizes the
// nightly deep-fuzz budget — seeds/minute on a CI core decides how much
// state space a fixed wall-clock window actually covers — and a regression
// here silently shrinks fuzz coverage even though every test stays green.
//
// Flags: --seeds=N --events=N --repeats=N --quick (single config, fewer
// seeds: the CI smoke shape).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "testing/differential.h"
#include "testing/scenario.h"

namespace ovs {
namespace {

using benchutil::BenchReport;
using benchutil::Flags;

struct RunTotals {
  double seconds = 0;
  size_t scenarios = 0;
  size_t events = 0;
  size_t divergences = 0;
};

RunTotals run_sweep(size_t seeds, const fuzz::GeneratorConfig& gcfg,
                    const std::vector<fuzz::DiffConfig>& cfgs) {
  fuzz::DifferentialRunner runner;
  RunTotals t;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    const fuzz::Scenario sc = fuzz::generate_scenario(seed, gcfg);
    for (const fuzz::DiffConfig& cfg : cfgs) {
      if (runner.run(sc, cfg)) ++t.divergences;
      ++t.scenarios;
      t.events += sc.events.size();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  t.seconds = std::chrono::duration<double>(t1 - t0).count();
  return t;
}

int bench_main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.boolean("quick", false);
  const size_t seeds =
      std::max<uint64_t>(1, flags.u64("seeds", quick ? 10 : 100));
  const size_t repeats = std::max<uint64_t>(1, flags.u64("repeats", 3));
  fuzz::GeneratorConfig gcfg;
  gcfg.n_events = std::max<uint64_t>(8, flags.u64("events", gcfg.n_events));

  std::vector<fuzz::DiffConfig> cfgs = fuzz::standard_configs();
  if (quick) cfgs.resize(1);

  BenchReport report("fuzz_throughput");
  std::printf("%-10s %-8s %14s %14s %12s\n", "seeds", "configs",
              "scenarios/s", "events/s", "divergences");
  benchutil::print_rule();

  std::vector<double> scen_rates, event_rates;
  size_t divergences = 0;
  for (size_t r = 0; r < repeats; ++r) {
    const RunTotals t = run_sweep(seeds, gcfg, cfgs);
    scen_rates.push_back(static_cast<double>(t.scenarios) / t.seconds);
    event_rates.push_back(static_cast<double>(t.events) / t.seconds);
    divergences += t.divergences;
  }
  std::sort(scen_rates.begin(), scen_rates.end());
  std::sort(event_rates.begin(), event_rates.end());
  const double scen_med = scen_rates[scen_rates.size() / 2];
  const double event_med = event_rates[event_rates.size() / 2];
  std::printf("%-10zu %-8zu %14.1f %14.0f %12zu\n", seeds, cfgs.size(),
              scen_med, event_med, divergences);

  const std::map<std::string, std::string> params = {
      {"seeds", std::to_string(seeds)},
      {"configs", std::to_string(cfgs.size())},
      {"events_per_scenario", std::to_string(gcfg.n_events)}};
  report.add("scenario_runs_per_sec", scen_med, params, repeats);
  report.add("events_per_sec", event_med, params, repeats);
  report.add("divergences", static_cast<double>(divergences), params,
             repeats);

  benchutil::print_rule();
  // The sweep is also a free acceptance check: sound configurations must
  // not diverge, and a throughput bench that quietly tolerates divergences
  // would report a meaningless (shrink-dominated) rate.
  if (divergences != 0) {
    std::printf("FAIL: %zu divergences in the benchmark sweep\n",
                divergences);
    report.write();
    return 1;
  }
  std::printf("PASS: zero divergences; %.1f scenario-runs/s (median of %zu)\n",
              scen_med, repeats);
  report.write();
  return 0;
}

}  // namespace
}  // namespace ovs

int main(int argc, char** argv) { return ovs::bench_main(argc, argv); }
