// Multi-threaded revalidator bench (§4.3, §6): pass latency and revalidated
// flows/s as a function of (a) plan-thread count and (b) the dirty fraction
// seen by the two-tier tag fast path.
//
// Both workloads run the full Switch on the sharded datapath backend
// (datapath_workers=4) and read Switch::last_reval_pass(); all reported
// rates come from the *virtual-cycle* pass latency (plan makespan plus
// per-thread sync from the CostModel), so the numbers are deterministic and
// host-independent — plan threads really run, but only correctness depends
// on them, never the metric. Two acceptance gates (exit code 1 on failure):
//
//   * scaling: flows/s at 4 plan threads >= 2.5x the 1-thread rate;
//   * tag fast path: >= 90% of re-translations skipped when <= 10% of the
//     flows are dirty (MAC moves touching 4 of 48 client MACs).
//
// Flags: --flows=N --threads_max=N --clients=N --repeats=N --quick=1
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ofproto/mac_learning.h"
#include "packet/match.h"

namespace ovs {
namespace {

using benchutil::BenchReport;
using benchutil::Flags;

constexpr uint64_t kMs = 1'000'000ULL;

// ---------------------------------------------------------------------------
// Workload 1: thread scaling. n exact-nw_dst rules produce n distinct
// megaflows; a rule added to a never-visited table bumps the tables
// generation, forcing a full re-translation pass over every flow.

SwitchConfig scaling_config() {
  SwitchConfig cfg;
  cfg.datapath_workers = 4;
  cfg.flow_limit = 1 << 20;
  cfg.dynamic_flow_limit = false;
  cfg.degradation.enabled = false;
  cfg.idle_timeout_ns = ~uint64_t{0} / 2;  // nothing idles out
  return cfg;
}

Packet dst_pkt(Ipv4 dst) {
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(2, 2, 2, 2));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(1234);
  p.key.set_tp_dst(80);
  p.size_bytes = 128;
  return p;
}

Ipv4 nth_dst(size_t i) {
  return Ipv4(10, static_cast<uint8_t>(i >> 16), static_cast<uint8_t>(i >> 8),
              static_cast<uint8_t>(i));
}

double flows_per_sec(const RevalPassStats& ps, const CostModel& m) {
  const double sync =
      ps.threads_used > 1
          ? m.reval_thread_sync * static_cast<double>(ps.threads_used)
          : 0.0;
  return static_cast<double>(ps.examined) /
         m.seconds(ps.makespan_cycles + sync);
}

double pass_ms(const RevalPassStats& ps, const CostModel& m) {
  const double sync =
      ps.threads_used > 1
          ? m.reval_thread_sync * static_cast<double>(ps.threads_used)
          : 0.0;
  return m.seconds(ps.makespan_cycles + sync) * 1e3;
}

// ---------------------------------------------------------------------------
// Workload 2: tag fast path. NORMAL forwarding between `clients` client MACs
// and one server; every megaflow carries tag(src)|tag(dst). MAC bits are
// brute-forced so each participant owns a distinct Bloom-tag bit (the tag
// space has only 64), making "dirty" exact instead of probabilistic. Moving
// k client MACs dirties the 2k flows touching them out of 2*clients total.

std::vector<EthAddr> distinct_tag_macs(size_t n) {
  std::vector<EthAddr> macs;
  uint64_t used = 0;
  for (uint64_t v = 0x020000000001ULL; macs.size() < n; ++v) {
    const EthAddr mac(v);
    const uint64_t t = MacLearning::tag(mac, 0);
    if ((used & t) != 0) continue;
    used |= t;
    macs.push_back(mac);
  }
  return macs;
}

Packet eth_pkt(EthAddr src, EthAddr dst, uint32_t in_port) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(src);
  p.key.set_eth_dst(dst);
  p.size_bytes = 128;
  return p;
}

int bench_main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.boolean("quick", false);
  const size_t n_flows =
      std::max<uint64_t>(256, flags.u64("flows", quick ? 2000 : 20000));
  const size_t threads_max =
      std::max<uint64_t>(4, flags.u64("threads_max", quick ? 4 : 8));
  const size_t n_clients =
      std::clamp<uint64_t>(flags.u64("clients", 48), 8, 60);
  const size_t repeats = std::max<uint64_t>(1, flags.u64("repeats", 3));
  const CostModel cost;
  BenchReport report("revalidator");
  int rc = 0;

  // --- Workload 1: flows/s vs plan-thread count -------------------------
  Switch sw(scaling_config());
  sw.add_port(1);
  sw.add_port(2);
  for (size_t i = 0; i < n_flows; ++i)
    sw.table(0).add_flow(MatchBuilder().ip().nw_dst(nth_dst(i)), 10,
                         OfActions().output(2));
  uint64_t now = kMs;
  for (size_t i = 0; i < n_flows; ++i) {
    sw.inject(dst_pkt(nth_dst(i)), now);
    if ((i & 63) == 63) sw.handle_upcalls(now);
  }
  sw.handle_upcalls(now);
  std::printf("scaling workload: %zu megaflows installed (%zu wanted)\n",
              sw.backend().flow_count(), n_flows);

  std::printf("%-8s %12s %14s %8s\n", "threads", "pass(ms)", "flows/s",
              "retrans");
  benchutil::print_rule();
  std::map<size_t, double> fps_by_threads;
  uint32_t bump_prio = 100;
  for (size_t t = 1; t <= threads_max; t *= 2) {
    sw.set_revalidator_threads(t);
    std::vector<double> fps, ms;
    uint64_t retrans = 0;
    for (size_t r = 0; r < repeats; ++r) {
      // Bump the tables generation without touching translation results:
      // the rule lands in table 1, which table 0 never resubmits to.
      sw.table(1).add_flow(MatchBuilder().ip().nw_src(Ipv4(192, 0, 2, 1)),
                           bump_prio++, OfActions::drop());
      now += kMs;
      sw.run_maintenance(now);
      const RevalPassStats& ps = sw.last_reval_pass();
      fps.push_back(flows_per_sec(ps, cost));
      ms.push_back(pass_ms(ps, cost));
      retrans = ps.retranslated;
    }
    std::sort(fps.begin(), fps.end());
    std::sort(ms.begin(), ms.end());
    const double med_fps = fps[fps.size() / 2];
    fps_by_threads[t] = med_fps;
    const std::map<std::string, std::string> params = {
        {"threads", std::to_string(t)}, {"flows", std::to_string(n_flows)}};
    report.add("reval_flows_per_sec", med_fps, params, repeats);
    report.add("reval_pass_ms", ms[ms.size() / 2], params, repeats);
    std::printf("%-8zu %12.3f %14.0f %8llu\n", t, ms[ms.size() / 2], med_fps,
                static_cast<unsigned long long>(retrans));
  }

  const double scaling = fps_by_threads[4] / fps_by_threads[1];
  report.add("reval_scaling_1_to_4", scaling,
             {{"flows", std::to_string(n_flows)}}, repeats);
  benchutil::print_rule();
  constexpr double kMinScaling = 2.5;
  std::printf("scaling 1 -> 4 threads: %.2fx (gate: >= %.1fx) %s\n", scaling,
              kMinScaling, scaling >= kMinScaling ? "PASS" : "FAIL");
  if (scaling < kMinScaling) rc = 1;

  // --- Workload 2: tag fast path vs dirty fraction ----------------------
  SwitchConfig tcfg = scaling_config();
  tcfg.reval_mode = RevalidationMode::kTwoTier;
  Switch tsw(tcfg);
  const std::vector<EthAddr> macs = distinct_tag_macs(n_clients + 1);
  const EthAddr server = macs[0];
  tsw.add_port(1);    // server
  tsw.add_port(2);    // migration target for dirtied clients
  for (size_t i = 0; i < n_clients; ++i)
    tsw.add_port(static_cast<uint32_t>(100 + i));
  tsw.table(0).add_flow(MatchBuilder(), 1, OfActions().normal());

  uint64_t tnow = kMs;
  tsw.pipeline().mac_learning().learn(server, 0, 1, tnow);
  for (size_t i = 0; i < n_clients; ++i) {
    const uint32_t port = static_cast<uint32_t>(100 + i);
    tsw.inject(eth_pkt(macs[i + 1], server, port), tnow);
    tsw.handle_upcalls(tnow);
    tsw.inject(eth_pkt(server, macs[i + 1], 1), tnow);
    tsw.handle_upcalls(tnow);
  }
  // Settle pass: consume the setup's MAC-learning generation bump so each
  // measurement below sees exactly its own k dirty MACs.
  tnow += kMs;
  tsw.run_maintenance(tnow);
  std::printf("\ntag workload: %zu megaflows over %zu clients (mode=twotier)\n",
              tsw.backend().flow_count(), n_clients);

  std::printf("%-8s %-8s %10s %10s %12s\n", "dirty_k", "dirty%", "skipped",
              "retrans", "skip_ratio");
  benchutil::print_rule();
  const std::vector<size_t> dirty_ks =
      quick ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 2, 4, 12, 24};
  size_t next_client = 0;
  double skip_at_gate = -1.0;
  for (size_t k : dirty_ks) {
    if (next_client + k > n_clients) next_client = 0;
    for (size_t i = 0; i < k; ++i)
      tsw.pipeline().mac_learning().learn(macs[1 + next_client + i], 0, 2,
                                          tnow);
    next_client += k;
    tnow += kMs;
    tsw.run_maintenance(tnow);
    const RevalPassStats& ps = tsw.last_reval_pass();
    const double dirty_frac =
        static_cast<double>(2 * k) / static_cast<double>(ps.examined);
    const double skip_ratio =
        static_cast<double>(ps.skipped_by_tags) /
        static_cast<double>(ps.examined);
    if (k == 4) skip_at_gate = skip_ratio;
    const std::map<std::string, std::string> params = {
        {"dirty_k", std::to_string(k)},
        {"clients", std::to_string(n_clients)}};
    report.add("tag_skip_ratio", skip_ratio, params, 1);
    report.add("tag_dirty_fraction", dirty_frac, params, 1);
    report.add("tag_pass_ms", pass_ms(ps, cost), params, 1);
    std::printf("%-8zu %-8.1f %10llu %10llu %12.3f\n", k, 100 * dirty_frac,
                static_cast<unsigned long long>(ps.skipped_by_tags),
                static_cast<unsigned long long>(ps.retranslated), skip_ratio);
  }

  benchutil::print_rule();
  constexpr double kMinSkip = 0.9;
  std::printf("skip ratio at dirty_k=4 (%.1f%% dirty): %.3f (gate: >= %.2f) %s\n",
              100.0 * 8.0 / static_cast<double>(2 * n_clients), skip_at_gate,
              kMinSkip, skip_at_gate >= kMinSkip ? "PASS" : "FAIL");
  if (skip_at_gate < kMinSkip) rc = 1;

  report.write();
  return rc;
}

}  // namespace
}  // namespace ovs

int main(int argc, char** argv) { return ovs::bench_main(argc, argv); }
