// Reproduces Table 1 of the paper: "Performance testing results for
// classifier optimizations". Each row runs the Netperf TCP_CRR workload
// against the §7.2 four-flow table with a different set of caching-aware
// classification optimizations.
//
// Paper reference (16-core 2.0 GHz Xeon, 400 Netperf sessions):
//   Optimizations         ktps   Flows      Masks  CPU% (user/kernel)
//   Megaflows disabled      37   1,051,884    1      45/40
//   No optimizations        56     905,758    3      37/40
//   Priority sorting only   57     794,124    4      39/45
//   Prefix tracking only    95          13   10       0/15
//   Staged lookup only     115          14   13       0/15
//   All optimizations      117          15   14       0/20
//
// Absolute ktps depend on the virtual cost model (see sim/cost_model.h);
// the shape to check is the ordering and the collapse of Flows once prefix
// tracking or staged lookup keeps L4 ports out of the megaflows.
#include <cstdio>

#include "bench_common.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

struct Row {
  const char* name;
  bool megaflows;
  ClassifierConfig cls;
};

std::vector<Row> rows() {
  std::vector<Row> out;
  out.push_back({"Megaflows disabled", false, ClassifierConfig{}});
  out.push_back({"No optimizations", true, ClassifierConfig::all_disabled()});
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.priority_sorting = true;
    out.push_back({"Priority sorting only", true, c});
  }
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.prefix_tracking = true;
    c.port_prefix_tracking = true;
    out.push_back({"Prefix tracking only", true, c});
  }
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.staged_lookup = true;
    out.push_back({"Staged lookup only", true, c});
  }
  out.push_back({"All optimizations", true, ClassifierConfig{}});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t warmup = flags.u64("warmup", 4000);
  const size_t txns = flags.u64("txns", 20000);
  // >1 interleaves CRR sessions into receive bursts through the batched
  // fast path (Switch::inject_batch) with the amortized cost model.
  const size_t rx_batch = flags.u64("rx_batch", 1);
  BenchReport report("table1_classifier_opts");

  std::printf("Table 1: classifier optimizations (TCP_CRR, %zu measured "
              "transactions, rx_batch=%zu)\n",
              txns, rx_batch);
  print_rule('=');
  std::printf("%-24s %8s %12s %7s %12s\n", "Optimizations", "ktps", "Flows",
              "Masks", "CPU% u/k");
  print_rule();

  for (const Row& row : rows()) {
    SwitchConfig cfg;
    cfg.classifier = row.cls;
    cfg.megaflows_enabled = row.megaflows;
    cfg.flow_limit = 2000000;  // the paper's run accumulated ~1M microflows
    cfg.dynamic_flow_limit = false;
    cfg.rx_batch = rx_batch;
    CrrResult r = run_crr_experiment(cfg, warmup, txns);
    std::printf("%-24s %8.0f %12.0f %7.0f %6.0f/%-5.0f\n", row.name, r.ktps,
                r.flows, r.masks, r.user_cpu_pct, r.kernel_cpu_pct);
    const std::map<std::string, std::string> params = {
        {"optimizations", row.name}, {"rx_batch", std::to_string(rx_batch)}};
    report.add("ktps", r.ktps, params, txns);
    report.add("flows", r.flows, params, txns);
    report.add("masks", r.masks, params, txns);
    report.add("user_cpu_pct", r.user_cpu_pct, params, txns);
    report.add("kernel_cpu_pct", r.kernel_cpu_pct, params, txns);
  }
  print_rule();
  std::printf("Shape checks: ktps must rise monotonically down the table;\n"
              "Flows must collapse from ~10^6 to ~tens once prefix tracking\n"
              "or staged lookup keeps TCP ports wildcarded.\n");
  return 0;
}
