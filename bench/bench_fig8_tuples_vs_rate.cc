// Reproduces Figure 8: "Forwarding rate in terms of the average number of
// megaflow tuples searched, with the microflow cache disabled" — plus the
// flat ~10.6 Mpps line measured with the microflow cache enabled.
//
// Method: install long-lived megaflows under k = 1..30 distinct masks (one
// nw_dst prefix length per mask, so a matching packet's lookup terminates
// after a mask-dependent number of tuples), drive steady traffic, record
// the measured average tuples searched per packet, and convert the
// per-packet virtual cycle cost into Mpps on two forwarding cores.
//
// Shape to match: hyperbolic decay from ~10 Mpps at 1 tuple toward ~2 Mpps
// past 30 tuples; the EMC-enabled line stays flat (paper: 10.6 Mpps,
// "independent of the number of tuples in the kernel classifier").
#include <cstdio>

#include "bench_common.h"
#include "datapath/datapath.h"
#include "sim/clock.h"
#include "workload/workloads.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

// Builds a datapath whose megaflow cache has `k` masks (nw_dst prefixes of
// distinct lengths). Returns the k packets that match them (one per mask).
std::vector<Packet> fill_megaflows(Datapath& dp, size_t k) {
  // k distinct masks (distinct prefix lengths) over k DISJOINT address
  // regions (distinct first octets), so every packet matches exactly one
  // tuple and a lookup searches (k+1)/2 tuples on average.
  std::vector<Packet> pkts;
  for (size_t i = 0; i < k; ++i) {
    const unsigned plen = static_cast<unsigned>(32 - (i % 24));
    const Ipv4 dst(static_cast<uint8_t>(20 + i), 0, 0, 1);
    Match m = MatchBuilder()
                  .ip()
                  .nw_dst_prefix(Ipv4(dst.value() & ipv4_prefix_mask(plen)),
                                 plen);
    dp.install(m, DpActions().output(2), 0);

    Packet p;
    p.key.set_in_port(1);
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kUdp);
    p.key.set_nw_src(Ipv4(1, 1, 1, 1));
    p.key.set_nw_dst(dst);
    p.key.set_tp_src(static_cast<uint16_t>(1000 + i));
    p.key.set_tp_dst(5001);
    pkts.push_back(p);
  }
  return pkts;
}

double run_series(bool microflow, size_t k, size_t packets,
                  double* avg_tuples) {
  DatapathConfig cfg;
  cfg.microflow_enabled = microflow;
  Datapath dp(cfg);
  auto pkts = fill_megaflows(dp, k);

  Rng rng(k * 7919 + (microflow ? 1 : 0));
  // Warm.
  for (size_t i = 0; i < 4096; ++i)
    dp.receive(pkts[rng.uniform(pkts.size())], i);
  dp.reset_stats();

  CostModel m;
  double cycles = 0;
  for (size_t i = 0; i < packets; ++i) {
    auto rx = dp.receive(pkts[rng.uniform(pkts.size())], 10000 + i);
    cycles += m.per_packet + (microflow ? m.microflow_probe : 0);
    if (rx.path != Datapath::Path::kMicroflowHit)
      cycles += m.per_tuple * rx.tuples_searched;
  }
  *avg_tuples = static_cast<double>(dp.stats().tuples_searched) /
                static_cast<double>(dp.stats().packets);
  const double cycles_per_pkt = cycles / static_cast<double>(packets);
  return 2 * m.ghz * 1e9 / cycles_per_pkt / 1e6;  // Mpps on 2 cores
}

// The PMD-style series: same workload through Datapath::process_batch with
// the amortized burst cost model (intra-burst dedup means repeated
// microflows cost one probe per burst, not one per packet).
double run_series_batched(size_t k, size_t packets, size_t batch) {
  DatapathConfig cfg;
  Datapath dp(cfg);
  auto pkts = fill_megaflows(dp, k);

  Rng rng(k * 7919 + 2);
  std::vector<Packet> burst(batch);
  std::vector<Datapath::RxResult> results(batch);
  for (size_t i = 0; i < 4096 / batch; ++i) {
    for (auto& p : burst) p = pkts[rng.uniform(pkts.size())];
    dp.process_batch(burst, i, results.data());
  }
  dp.reset_stats();

  CostModel m;
  double cycles = 0;
  size_t done = 0;
  while (done < packets) {
    for (auto& p : burst) p = pkts[rng.uniform(pkts.size())];
    Datapath::BatchSummary sum;
    dp.process_batch(burst, 10000 + done, results.data(), &sum);
    cycles += m.batch_fixed + m.per_packet_batched * sum.packets +
              m.microflow_probe * sum.emc_probes +
              m.per_tuple * sum.tuples_searched + m.miss_kernel * sum.misses;
    done += batch;
  }
  const double cycles_per_pkt = cycles / static_cast<double>(done);
  return 2 * m.ghz * 1e9 / cycles_per_pkt / 1e6;  // Mpps on 2 cores
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t packets = flags.u64("packets", 200000);
  const size_t max_masks = flags.u64("max_masks", 24);
  const size_t batch = flags.u64("batch", 32);
  BenchReport report("fig8_tuples_vs_rate");

  std::printf("Figure 8: forwarding rate vs. average megaflow tuples "
              "searched\n");
  print_rule('=');
  std::printf("%7s %16s %18s | %18s | %14s\n", "masks", "avg tuples/pkt",
              "Mpps (EMC off)", "Mpps (EMC on)", "Mpps (batched)");
  print_rule();
  for (size_t k = 1; k <= max_masks; k += (k < 8 ? 1 : 4)) {
    double tuples_off = 0, tuples_on = 0;
    const double off = run_series(false, k, packets, &tuples_off);
    const double on = run_series(true, k, packets, &tuples_on);
    const double batched = run_series_batched(k, packets, batch);
    std::printf("%7zu %16.2f %18.2f | %18.2f | %14.2f\n", k, tuples_off, off,
                on, batched);
    const std::string masks = std::to_string(k);
    report.add("mpps", off, {{"series", "emc_off"}, {"masks", masks}},
               packets);
    report.add("mpps", on, {{"series", "emc_on"}, {"masks", masks}}, packets);
    report.add("mpps", batched,
               {{"series", "batched"},
                {"masks", masks},
                {"batch", std::to_string(batch)}},
               packets);
    report.add("tuples_per_pkt", tuples_off,
               {{"series", "emc_off"}, {"masks", masks}}, packets);
  }
  print_rule();
  std::printf(
      "Shape checks: the EMC-off series decays hyperbolically with the\n"
      "number of tuples searched; the EMC-on series stays flat (paper:\n"
      "~10.6 Mpps regardless of kernel classifier size); the batched\n"
      "series sits above the EMC-on line at every table size.\n");
  return 0;
}
