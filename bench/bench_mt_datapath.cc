// Sharded multi-worker datapath bench: Mpps as a function of worker count
// and receive-burst size on a long-lived-flows workload (steady state: every
// packet resolved by the per-worker microflow shard or the shared megaflow
// classifier; no flow setups in the measured window).
//
// Two modes:
//   model (default) — each worker's stream is processed sequentially on this
//     core; per-worker virtual cycles come from the CostModel applied to the
//     BatchSummary of its bursts (per-packet formula for batch=1, amortized
//     burst formula for batch>1, mirroring Switch::inject vs inject_batch).
//     The rate uses the makespan (max over workers), i.e. what an N-core
//     PMD deployment would sustain. Deterministic and host-independent, so
//     it is the primary metric — CI hosts may have a single core.
//   --mode=real — additionally drives the worker thread pool and reports
//     wall-clock Mpps (meaningful only on multi-core hosts).
//
// Flags: --pkts_per_worker=N --microflows_per_worker=N --megaflows=N
//        --mode=model|real --repeats=N
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datapath/mt_datapath.h"
#include "packet/match.h"

namespace ovs {
namespace {

using benchutil::BenchReport;
using benchutil::Flags;

Packet tcp_pkt(Ipv4 dst, uint16_t sport, uint16_t dport) {
  Packet p;
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(2, 2, 2, 2));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 128;
  return p;
}

struct Workload {
  // One pre-built packet stream per worker; microflows are distinct across
  // workers (each worker owns a private EMC shard) but share the megaflows.
  std::vector<std::vector<Packet>> streams;
  size_t total_pkts = 0;
};

Workload build_workload(size_t workers, size_t pkts_per_worker,
                        size_t microflows, size_t megaflows) {
  Workload w;
  w.streams.resize(workers);
  for (size_t wk = 0; wk < workers; ++wk) {
    auto& s = w.streams[wk];
    s.reserve(pkts_per_worker);
    for (size_t i = 0; i < pkts_per_worker; ++i) {
      const size_t mf = i % microflows;
      const auto oct = static_cast<uint8_t>(10 + mf % megaflows);
      const auto sport = static_cast<uint16_t>(1024 + wk * 4096 + mf);
      s.push_back(tcp_pkt(Ipv4(oct, 0, 0, 1), sport, 80));
    }
    w.total_pkts += pkts_per_worker;
  }
  return w;
}

void install_megaflows(ShardedDatapath& dp, size_t megaflows) {
  for (size_t i = 0; i < megaflows; ++i)
    dp.install(MatchBuilder().ip().nw_dst_prefix(
                   Ipv4(static_cast<uint8_t>(10 + i), 0, 0, 0), 8),
               DpActions().output(static_cast<uint32_t>(i + 1)), 0);
}

// Kernel fast-path cycles for one burst. batch=1 is charged the classic
// per-packet cost; batch>1 the amortized PMD cost (CostModel §"batched").
double burst_cycles(const CostModel& m, const Datapath::BatchSummary& s,
                    bool batched) {
  const double per_pkt = batched ? m.per_packet_batched : m.per_packet;
  const double fixed = batched ? m.batch_fixed : 0.0;
  return fixed + per_pkt * s.packets + m.microflow_probe * s.emc_probes +
         m.per_tuple * s.tuples_searched + m.miss_kernel * s.misses;
}

struct RunResult {
  double mpps_model = 0;
  double mpps_wall = 0;  // 0 unless mode=real
};

RunResult run_once(size_t workers, size_t batch, const Workload& wl,
                   const CostModel& cost, bool real_mode) {
  ShardedDatapathConfig cfg;
  cfg.n_workers = workers;
  ShardedDatapath dp(cfg);
  install_megaflows(dp, 16);

  std::vector<Datapath::RxResult> results(ShardedDatapath::kMaxBatch);
  const auto drive = [&](size_t wk, double* cycles) {
    const auto& s = wl.streams[wk];
    Datapath::BatchSummary total{};
    for (size_t off = 0; off < s.size(); off += batch) {
      const size_t n = std::min(batch, s.size() - off);
      Datapath::BatchSummary sum;
      dp.process_batch(wk, std::span<const Packet>(s.data() + off, n),
                       /*now_ns=*/1000, results.data(), &sum);
      if (cycles) *cycles += burst_cycles(cost, sum, batch > 1);
      total += sum;
    }
    return total;
  };

  // Warmup pass populates every worker's EMC shard; measured pass is pure
  // steady state (no misses, no upcalls).
  for (size_t wk = 0; wk < workers; ++wk) drive(wk, nullptr);
  dp.take_upcalls(wl.total_pkts);

  RunResult out;
  double makespan = 0;
  for (size_t wk = 0; wk < workers; ++wk) {
    double cycles = 0;
    drive(wk, &cycles);
    makespan = std::max(makespan, cycles);
  }
  out.mpps_model =
      static_cast<double>(wl.total_pkts) / cost.seconds(makespan) / 1e6;

  if (real_mode) {
    dp.start();
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t wk = 0; wk < workers; ++wk) {
      const auto& s = wl.streams[wk];
      for (size_t off = 0; off < s.size(); off += batch) {
        const size_t n = std::min(batch, s.size() - off);
        dp.submit(wk, std::vector<Packet>(s.begin() + off,
                                          s.begin() + off + n),
                  1000);
      }
    }
    dp.drain();
    const auto t1 = std::chrono::steady_clock::now();
    dp.stop();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    out.mpps_wall = static_cast<double>(wl.total_pkts) / secs / 1e6;
  }
  return out;
}

int bench_main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t pkts_per_worker =
      std::max<uint64_t>(1, flags.u64("pkts_per_worker", 1 << 17));
  const size_t microflows =
      std::max<uint64_t>(1, flags.u64("microflows_per_worker", 64));
  // Megaflows cap at 200: dsts are /8 prefixes rooted at octet 10.
  const size_t megaflows =
      std::clamp<uint64_t>(flags.u64("megaflows", 16), 1, 200);
  const size_t repeats = std::max<uint64_t>(1, flags.u64("repeats", 3));
  const bool real_mode = flags.str("mode", "model") == "real";
  const CostModel cost;

  static constexpr size_t kWorkers[] = {1, 2, 4, 8};
  static constexpr size_t kBatches[] = {1, 8, 32, 128};

  BenchReport report("mt_datapath");
  // Always recorded, in both modes: consumers of BENCH_mt_datapath.json can
  // tell from the JSON alone whether wall-clock rows (and the real-thread
  // scaling gate) were measured on a host that could actually run the
  // workers in parallel, without scraping stdout for the warning.
  const unsigned detected_cores = std::thread::hardware_concurrency();
  report.add("detected_cores", static_cast<double>(detected_cores),
             {{"mode", real_mode ? "real" : "model"}});
  std::printf("host cores detected: %u\n", detected_cores);
  std::printf("%-8s %-8s %12s %12s\n", "workers", "batch", "Mpps(model)",
              real_mode ? "Mpps(wall)" : "-");
  benchutil::print_rule();

  // mpps[workers][batch] medians, for the derived ratios below.
  std::map<std::pair<size_t, size_t>, double> mpps;
  std::map<std::pair<size_t, size_t>, double> mpps_wall;
  for (size_t workers : kWorkers) {
    const Workload wl =
        build_workload(workers, pkts_per_worker, microflows, megaflows);
    for (size_t batch : kBatches) {
      std::vector<double> model, wall;
      for (size_t r = 0; r < repeats; ++r) {
        const RunResult rr = run_once(workers, batch, wl, cost, real_mode);
        model.push_back(rr.mpps_model);
        wall.push_back(rr.mpps_wall);
      }
      std::sort(model.begin(), model.end());
      std::sort(wall.begin(), wall.end());
      const double med = model[model.size() / 2];
      mpps[{workers, batch}] = med;
      mpps_wall[{workers, batch}] = wall[wall.size() / 2];
      const std::map<std::string, std::string> params = {
          {"workers", std::to_string(workers)},
          {"batch", std::to_string(batch)},
          {"microflows_per_worker", std::to_string(microflows)},
          {"megaflows", std::to_string(megaflows)},
          {"pkts_per_worker", std::to_string(pkts_per_worker)}};
      report.add("mpps_model", med, params, repeats);
      if (real_mode)
        report.add("mpps_wall", wall[wall.size() / 2], params, repeats);
      std::printf("%-8zu %-8zu %12.2f", workers, batch, med);
      if (real_mode) std::printf(" %12.2f", wall[wall.size() / 2]);
      std::printf("\n");
    }
  }

  // Acceptance ratios: batching gain on one worker, scaling 1 -> 4 workers.
  const double batch_speedup = mpps[{1, 32}] / mpps[{1, 1}];
  const double scaling_1_to_4 = mpps[{4, 32}] / mpps[{1, 32}];
  benchutil::print_rule();
  std::printf("batch=32 vs per-packet (1 worker): %.2fx\n", batch_speedup);
  std::printf("scaling 1 -> 4 workers (batch=32): %.2fx\n", scaling_1_to_4);
  report.add("batch_speedup_vs_per_packet", batch_speedup,
             {{"workers", "1"}, {"batch", "32"}}, repeats);
  report.add("scaling_1_to_4", scaling_1_to_4, {{"batch", "32"}}, repeats);

  // Acceptance gates. The model-mode makespan gate is authoritative: it is
  // deterministic and independent of how many cores this host has. The
  // real-thread gate only means something when the machine can actually run
  // four workers at once, so on smaller hosts it downgrades to a warning.
  int rc = 0;
  constexpr double kMinModelScaling = 2.5;
  if (scaling_1_to_4 < kMinModelScaling) {
    std::printf("FAIL: model scaling 1->4 workers %.2fx < %.2fx\n",
                scaling_1_to_4, kMinModelScaling);
    rc = 1;
  } else {
    std::printf("PASS: model scaling 1->4 workers %.2fx >= %.2fx\n",
                scaling_1_to_4, kMinModelScaling);
  }
  if (real_mode) {
    const unsigned cores = detected_cores;
    const double wall_scaling =
        mpps_wall[{4, 32}] / std::max(mpps_wall[{1, 32}], 1e-9);
    report.add("scaling_1_to_4_wall", wall_scaling,
               {{"batch", "32"}, {"cores", std::to_string(cores)}}, repeats);
    constexpr double kMinWallScaling = 1.5;
    std::printf("real-thread scaling 1 -> 4 workers (batch=32): %.2fx on %u cores\n",
                wall_scaling, cores);
    if (cores < 4) {
      std::printf("WARN: only %u cores detected; real-thread scaling gate "
                  "skipped (model gate above is authoritative)\n", cores);
    } else if (wall_scaling < kMinWallScaling) {
      std::printf("FAIL: real-thread scaling %.2fx < %.2fx on a %u-core host\n",
                  wall_scaling, kMinWallScaling, cores);
      rc = 1;
    } else {
      std::printf("PASS: real-thread scaling %.2fx >= %.2fx\n", wall_scaling,
                  kMinWallScaling);
    }
  }
  report.write();
  return rc;
}

}  // namespace
}  // namespace ovs

int main(int argc, char** argv) { return ovs::bench_main(argc, argv); }
