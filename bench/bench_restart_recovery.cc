// Crash/restart recovery bench (DESIGN.md §9): a dense-flow-table switch
// loses its userspace daemon mid-run while the datapath keeps forwarding
// from the surviving megaflow cache. During the blackout the cache rots —
// entries are corrupted to a bogus output port, and a rogue overlapping
// megaflow is planted directly in the datapath (simulated kernel-side rot,
// something no healthy install path would produce). The next maintenance
// tick restarts the daemon, which reconciles the surviving cache against
// the rebuilt tables and runs the megaflow invariant gate before serving.
//
// Two configurations run the identical scenario:
//
//   reconcile — the default restart path: dump, re-translate, adopt/repair/
//               delete, invariant-gate (plus the periodic self-check);
//   coldstart — ablation: the surviving cache is discarded at crash time,
//               so every flow must be re-installed through the upcall path.
//
// Gates (exit non-zero on failure, so CI can run this as a check):
//   1. zero misdelivered packets after recovery (corrupted entries repaired,
//      the rogue overlap deleted; the invariant checker agrees);
//   2. >= 95% of surviving megaflows adopted or repaired by reconciliation;
//   3. recovery makespan (crash -> 95% of pre-crash flows live) beats the
//      cold-start ablation's;
//   4. deterministic: two runs from the same seed produce identical
//      counters, and the post-recovery flow table and recovery verdicts are
//      identical across datapath backends and revalidator thread counts.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/clock.h"
#include "util/fault.h"
#include "vswitchd/switch.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

constexpr uint32_t kBogusPort = 0xDEAD;  // where corrupted entries forward

struct Params {
  double sim_seconds = 8;
  double crash_at = 3;            // crash fires at this second's maintenance
  size_t n_flows = 3000;          // /24 prefix rules == steady-state megaflows
  size_t pps = 12000;             // round-robin over every connection
  size_t corrupted = 32;          // entries rotted during the blackout
  size_t handler_budget = 256;    // upcalls serviced per 1 ms tick
  size_t maintenance_ms = 250;    // maintenance (and self-check) period
  size_t datapath_workers = 0;    // 0 = single-threaded kernel datapath
  size_t revalidator_threads = 1;
  uint64_t seed = 7;
};

struct Outcome {
  uint64_t flows_at_crash = 0;
  uint64_t blackout_ns = 0;        // crash -> serving again
  uint64_t makespan_ns = 0;        // crash -> 95% of pre-crash flows live
  uint64_t stale_residency_ns = 0; // corrupted entries wrong -> repaired
  uint64_t misdelivered_blackout = 0;
  uint64_t misdelivered_after = 0;
  uint64_t upcalls_dropped_blackout = 0;
  // Reconciliation verdicts (deltas across the recovery).
  uint64_t adopted = 0;
  uint64_t repaired = 0;
  uint64_t deleted = 0;            // idle + stale
  uint64_t quarantined = 0;
  double recovery_user_cycles = 0; // crash -> recovered
  // Post-recovery flow table, canonicalized: must be identical across
  // backends and thread counts.
  std::vector<std::string> canonical_flows;
  std::vector<uint64_t> fingerprint;

  double recovered_frac() const {
    const uint64_t examined = adopted + repaired + deleted;
    return examined == 0 ? 0.0
                         : static_cast<double>(adopted + repaired) /
                               static_cast<double>(examined);
  }
};

Packet make_packet(uint32_t in_port, Ipv4 src, Ipv4 dst, uint16_t sport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(src);
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(443);
  return p;
}

std::vector<std::string> canonical_flows(const Switch& sw) {
  std::vector<std::string> out;
  for (DpBackend::FlowRef f : sw.backend().dump())
    out.push_back(sw.backend().flow_match(f).to_string() + " -> " +
                  sw.backend().flow_actions(f).to_string());
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t fnv1a(const std::vector<std::string>& strs) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::string& s : strs)
    for (char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
  return h;
}

Outcome run_recovery(bool coldstart, const Params& P) {
  FaultInjector fault(P.seed);
  SwitchConfig cfg;
  cfg.flow_limit = 50000;
  cfg.datapath_workers = P.datapath_workers;
  cfg.revalidator_threads = P.revalidator_threads;
  cfg.fault = &fault;
  Switch sw(cfg);

  // Dense flow table: one /24 forwarding rule per connection, four ingress
  // ports, eight egress ports. Each connection's megaflow is therefore
  // (in_port, eth, proto, nw_dst/24) — n_flows distinct megaflows.
  for (uint32_t p = 1; p <= 4; ++p) sw.add_port(p);
  for (uint32_t e = 100; e < 108; ++e) sw.add_port(e);
  struct Conn {
    Ipv4 src{0};
    Ipv4 dst{0};
    uint32_t in_port = 0;
    uint16_t sport = 0;
  };
  std::vector<Conn> conns(P.n_flows);
  for (size_t i = 0; i < P.n_flows; ++i) {
    const auto hi = static_cast<uint8_t>(i / 250);
    const auto lo = static_cast<uint8_t>(i % 250);
    sw.table(0).add_flow(
        MatchBuilder().tcp().nw_dst_prefix(Ipv4(10, hi, lo, 0), 24), 10,
        OfActions().output(100 + static_cast<uint32_t>(i % 8)));
    conns[i] = {Ipv4(192, 168, hi, lo), Ipv4(10, hi, lo, 5),
                1 + static_cast<uint32_t>(i % 4),
                static_cast<uint16_t>(10000 + (i & 0x3FFF))};
  }

  VirtualClock clock;
  const auto ticks = static_cast<size_t>(P.sim_seconds * 1000.0);
  const auto crash_tick = static_cast<size_t>(P.crash_at * 1000.0);
  const size_t pkts_per_tick = std::max<size_t>(1, P.pps / 1000);

  Outcome out;
  uint64_t pkt_seq = 0;
  uint64_t crash_ns = 0, recovered_ns = 0, repaired_ns = 0;
  uint64_t mis_at_recovery = 0, dropped_at_crash = 0;
  uint64_t adopted0 = 0, repaired0 = 0, deleted0 = 0, quarantined0 = 0;
  double user0 = 0;
  bool crashed_seen = false, serving_seen = false, recovered_seen = false;

  for (size_t tick = 0; tick < ticks; ++tick) {
    for (size_t i = 0; i < pkts_per_tick; ++i, ++pkt_seq) {
      const Conn& c = conns[pkt_seq % conns.size()];
      sw.inject(make_packet(c.in_port, c.src, c.dst, c.sport), clock.now());
    }
    sw.handle_upcalls(clock.now(), P.handler_budget);
    clock.advance(kMillisecond);

    if (tick == crash_tick) {
      // One crash exactly: a window anchored at the current occurrence
      // count, taken by this tick's maintenance call below.
      const uint64_t occ = fault.occurrences(FaultPoint::kUserspaceCrash);
      fault.arm_window(FaultPoint::kUserspaceCrash, occ, occ + 1);
      sw.run_maintenance(clock.now());
    } else if ((tick + 1) % P.maintenance_ms == 0) {
      sw.run_maintenance(clock.now());
      // Periodic background self-check (the "checker on" configuration).
      if (sw.lifecycle() == LifecycleState::kServing) sw.self_check();
    }

    if (!crashed_seen && sw.lifecycle() != LifecycleState::kServing) {
      crashed_seen = true;
      crash_ns = clock.now();
      out.flows_at_crash = sw.backend().flow_count();
      dropped_at_crash = sw.counters().upcalls_dropped;
      adopted0 = sw.counters().flows_adopted;
      repaired0 = sw.counters().flows_repaired;
      deleted0 = sw.counters().reval_deleted_idle +
                 sw.counters().reval_deleted_stale;
      quarantined0 = sw.counters().flows_quarantined;
      user0 = sw.cpu().user_cycles;
      // Kernel-side rot while nobody is watching: a handful of corrupted
      // entries (bogus output port) and one rogue overlapping megaflow a
      // healthy install path would never produce (broader /16 mask, bogus
      // actions, intersecting an installed /24 entry's region).
      for (size_t k = 0; k < P.corrupted; ++k)
        sw.backend().corrupt_entry(
            (k * 97) % std::max<uint64_t>(1, out.flows_at_crash));
      const std::vector<DpBackend::FlowRef> live = sw.backend().dump();
      if (!live.empty()) {
        const Match& m = sw.backend().flow_match(live[0]);
        MatchBuilder rogue = MatchBuilder().tcp().nw_dst_prefix(
            Ipv4(m.key.nw_dst()), 16);
        DpActions bogus;
        bogus.output(kBogusPort);
        sw.backend().install(rogue, std::move(bogus), clock.now());
      }
      if (coldstart) {
        // Ablation: the surviving cache is discarded, so recovery must
        // rebuild every flow through the upcall path.
        for (DpBackend::FlowRef f : sw.backend().dump())
          sw.backend().remove(f);
        sw.backend().purge_dead();
      }
    }
    if (crashed_seen && !serving_seen &&
        sw.lifecycle() == LifecycleState::kServing) {
      serving_seen = true;
      out.blackout_ns = clock.now() - crash_ns;
      out.upcalls_dropped_blackout =
          sw.counters().upcalls_dropped - dropped_at_crash;
      out.misdelivered_blackout = sw.port_stats(kBogusPort).tx_packets;
      // Reconciliation repairs corrupted entries at restart, so their
      // wrong-actions residency equals the blackout.
      repaired_ns = sw.counters().flows_repaired > repaired0
                        ? out.blackout_ns
                        : 0;
    }
    // Recovered = the daemon serves again AND >= 95% of the pre-crash flow
    // count is live (on the reconcile path the cache never dips, so this is
    // the restart tick; cold start must also re-install its flows).
    if (serving_seen && !recovered_seen &&
        sw.backend().flow_count() >=
            (out.flows_at_crash * 95) / 100) {
      recovered_seen = true;
      recovered_ns = clock.now();
      out.makespan_ns = recovered_ns - crash_ns;
      out.recovery_user_cycles = sw.cpu().user_cycles - user0;
      mis_at_recovery = sw.port_stats(kBogusPort).tx_packets;
    }
  }

  const Switch::Counters& c = sw.counters();
  out.stale_residency_ns = repaired_ns;
  out.misdelivered_after =
      sw.port_stats(kBogusPort).tx_packets - mis_at_recovery;
  out.adopted = c.flows_adopted - adopted0;
  out.repaired = c.flows_repaired - repaired0;
  out.deleted =
      c.reval_deleted_idle + c.reval_deleted_stale - deleted0;
  out.quarantined = c.flows_quarantined - quarantined0;
  out.canonical_flows = canonical_flows(sw);

  const Datapath::Stats d = sw.backend().stats();
  out.fingerprint = {c.flow_setups,       c.setup_dups,
                     c.install_fails,     c.upcalls_handled,
                     c.upcalls_dropped,   c.upcalls_retried,
                     c.retry_abandoned,   c.userspace_crashes,
                     c.flows_adopted,     c.flows_repaired,
                     c.flows_quarantined, c.reconcile_stalls,
                     c.reval_deleted_idle, c.reval_deleted_stale,
                     c.tx_packets,        d.packets,
                     d.misses,            out.flows_at_crash,
                     out.misdelivered_after,
                     sw.backend().flow_count(),
                     fnv1a(out.canonical_flows)};
  return out;
}

void print_outcome(const char* name, const Outcome& o) {
  std::printf("%-10s %7llu %8.1f %8.1f %9llu %9llu %7llu %7llu %7llu\n",
              name, static_cast<unsigned long long>(o.flows_at_crash),
              static_cast<double>(o.blackout_ns) / 1e6,
              static_cast<double>(o.makespan_ns) / 1e6,
              static_cast<unsigned long long>(o.misdelivered_blackout),
              static_cast<unsigned long long>(o.misdelivered_after),
              static_cast<unsigned long long>(o.adopted),
              static_cast<unsigned long long>(o.repaired),
              static_cast<unsigned long long>(o.deleted));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Params P;
  if (flags.boolean("quick", false)) {
    P.sim_seconds = 4;
    P.crash_at = 1.5;
    P.n_flows = 800;
    P.pps = 6000;
  }
  P.sim_seconds = flags.f64("seconds", P.sim_seconds);
  P.n_flows = flags.u64("flows", P.n_flows);
  P.pps = flags.u64("pps", P.pps);
  P.corrupted = flags.u64("corrupted", P.corrupted);
  P.seed = flags.u64("seed", P.seed);

  BenchReport report("restart_recovery");
  std::printf("Restart recovery: %zu megaflows, crash at %.1fs, %zu entries "
              "corrupted + 1 rogue overlap during the blackout\n",
              P.n_flows, P.crash_at, P.corrupted);
  print_rule('=');
  std::printf("%-10s %7s %8s %8s %9s %9s %7s %7s %7s\n", "config", "flows",
              "blk_ms", "mksp_ms", "mis_blk", "mis_aft", "adopt", "repair",
              "delete");
  print_rule();

  const Outcome reconcile = run_recovery(false, P);
  const Outcome replay = run_recovery(false, P);
  const Outcome coldstart = run_recovery(true, P);
  print_outcome("reconcile", reconcile);
  print_outcome("coldstart", coldstart);
  print_rule();

  // Backend / thread-count invariance: the post-recovery flow table and the
  // reconciliation verdicts must not depend on how the datapath is sharded
  // or how many plan threads the revalidator uses.
  Params mt = P;
  mt.revalidator_threads = 4;
  const Outcome threads4 = run_recovery(false, mt);
  Params sharded = mt;
  sharded.datapath_workers = 4;
  const Outcome workers4 = run_recovery(false, sharded);

  const bool deterministic = reconcile.fingerprint == replay.fingerprint;
  const bool gate_mis = reconcile.misdelivered_after == 0 &&
                        threads4.misdelivered_after == 0 &&
                        workers4.misdelivered_after == 0;
  const bool gate_recovered = reconcile.recovered_frac() >= 0.95;
  const bool gate_makespan = reconcile.makespan_ns < coldstart.makespan_ns;
  auto verdicts = [](const Outcome& o) {
    return std::vector<uint64_t>{o.adopted, o.repaired, o.deleted,
                                 o.quarantined};
  };
  const bool gate_invariant =
      reconcile.canonical_flows == threads4.canonical_flows &&
      reconcile.canonical_flows == workers4.canonical_flows &&
      verdicts(reconcile) == verdicts(threads4) &&
      verdicts(reconcile) == verdicts(workers4);

  std::printf("misdelivered after recovery: %llu / %llu / %llu "
              "(1 thread / 4 threads / 4 workers)  [gate == 0: %s]\n",
              static_cast<unsigned long long>(reconcile.misdelivered_after),
              static_cast<unsigned long long>(threads4.misdelivered_after),
              static_cast<unsigned long long>(workers4.misdelivered_after),
              gate_mis ? "PASS" : "FAIL");
  std::printf("surviving megaflows adopted or repaired: %.2f%%  "
              "[gate >= 95%%: %s]\n", 100 * reconcile.recovered_frac(),
              gate_recovered ? "PASS" : "FAIL");
  std::printf("recovery makespan: %.1f ms reconcile vs %.1f ms cold start  "
              "[gate <: %s]\n",
              static_cast<double>(reconcile.makespan_ns) / 1e6,
              static_cast<double>(coldstart.makespan_ns) / 1e6,
              gate_makespan ? "PASS" : "FAIL");
  std::printf("recovery user cycles: %.2e reconcile vs %.2e cold start\n",
              reconcile.recovery_user_cycles, coldstart.recovery_user_cycles);
  std::printf("post-recovery flow table invariant across backends/threads: "
              "%s\n", gate_invariant ? "PASS" : "FAIL");
  std::printf("deterministic replay from seed %llu: %s\n",
              static_cast<unsigned long long>(P.seed),
              deterministic ? "PASS" : "FAIL");

  for (const auto* o : {&reconcile, &coldstart}) {
    const std::string series = o == &reconcile ? "reconcile" : "coldstart";
    report.add("blackout_ms", static_cast<double>(o->blackout_ns) / 1e6,
               {{"series", series}});
    report.add("makespan_ms", static_cast<double>(o->makespan_ns) / 1e6,
               {{"series", series}});
    report.add("recovery_user_cycles", o->recovery_user_cycles,
               {{"series", series}});
    report.add("misdelivered_blackout",
               static_cast<double>(o->misdelivered_blackout),
               {{"series", series}});
    report.add("misdelivered_after",
               static_cast<double>(o->misdelivered_after),
               {{"series", series}});
    report.add("flows_adopted", static_cast<double>(o->adopted),
               {{"series", series}});
    report.add("flows_repaired", static_cast<double>(o->repaired),
               {{"series", series}});
    report.add("flows_deleted", static_cast<double>(o->deleted),
               {{"series", series}});
    report.add("upcalls_dropped_blackout",
               static_cast<double>(o->upcalls_dropped_blackout),
               {{"series", series}});
  }
  report.add("recovered_frac", reconcile.recovered_frac());
  report.add("stale_residency_ms",
             static_cast<double>(reconcile.stale_residency_ns) / 1e6);
  report.add("deterministic", deterministic ? 1 : 0);
  report.add("backend_invariant", gate_invariant ? 1 : 0);
  report.write();

  return gate_mis && gate_recovered && gate_makespan && gate_invariant &&
                 deterministic
             ? 0
             : 1;
}
