// Simulated NIC hardware-offload tier bench (DESIGN.md §13): steady-state
// throughput and offload hit rate as the slot table grows, under a Zipf
// per-flow skew, plus a churn + crash/restart safety loop.
//
// Part 1 — size sweep. The same Zipf workload (SkewSampler over n_flows
// 5-tuples spread across eight prefix-length rule groups, so megaflow hits
// walk a multi-tuple TSS) runs against offload_slots in {0, 256, 1k, 4k,
// 16k}. For each size we report the offload hit rate and the modeled
// single-core Mpps (measured packets / modeled kernel seconds): the tier
// only pays off when the earned-slot placement actually captures the head
// of the distribution, since every CPU-path packet is taxed an extra
// offload_probe for the miss.
//
// Part 2 — churn + crash/restart loop. With the tier enabled, rules are
// rewired mid-run while the daemon crashes twice; during each blackout
// offloaded slots and megaflow entries are rotted to a bogus output port.
// Restart reconciliation must adopt-or-flush the NIC table so that after
// recovery not a single packet is misdelivered.
//
// Gates (exit non-zero, so CI can run this as a check):
//   1. model Mpps at 4096 slots >= 1.3x the offload-off baseline;
//   2. per-port delivery fingerprint identical across every table size
//      (the tier may change which tier serves a packet, never where it
//      goes) and off-mode serves zero offload hits;
//   3. zero misdelivered packets after recovery in the churn/crash loop,
//      with a clean shadow-coherence check (dp_check) at the end;
//   4. deterministic: two runs from the same seed produce identical
//      counter fingerprints.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "datapath/dp_check.h"
#include "sim/clock.h"
#include "util/fault.h"
#include "util/rng.h"
#include "vswitchd/switch.h"
#include "workload/skew.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

constexpr uint32_t kBogusPort = 0xDEAD;  // where rotted entries forward
constexpr size_t kGroups = 8;            // prefix-length rule groups

struct Params {
  size_t n_flows = 60000;
  double zipf_s = 1.0;
  size_t pps = 50000;
  double warmup_seconds = 4;    // placement converges over a few dump passes
  double measure_seconds = 4;
  size_t handler_budget = 512;  // upcalls serviced per 1 ms tick
  size_t maintenance_ms = 1000; // dump interval: sets EWMA earn depth
  std::vector<size_t> sizes = {0, 256, 1024, 4096, 16384};
  uint64_t seed = 11;
};

// Eight 5-tuple connections share each megaflow (distinct sport and host
// octet), so a single offloaded slot absorbs traffic the exact-match EMC
// needs eight entries for — the aggregation that makes a small NIC table
// worth more than a bigger microflow cache. Megaflow m lives in rule group
// m % kGroups; group g's rules mask nw_dst with prefix length 17 + g, so
// the megaflow TSS carries eight distinct mask shapes, and octet 2 plus
// the top 1+g bits of octet 3 spread with m, giving thousands of megaflows
// per tuple. Flow index == Zipf rank (SkewSampler draws low indices most
// often), so hot megaflows land in every group and every tuple stays warm.
constexpr size_t kConnsPerMegaflow = 8;

struct MfCoords {
  size_t g, b2, hi;
};

MfCoords mf_coords(size_t m) {
  const size_t g = m % kGroups;
  const size_t jm = m / kGroups;
  return {g, jm % 256, (jm / 256) % (size_t{1} << (1 + g))};
}

Packet flow_packet(size_t i) {
  const size_t v = i % kConnsPerMegaflow;
  const size_t m = i / kConnsPerMegaflow;
  const MfCoords c = mf_coords(m);
  Packet p;
  // Port/MAC/src are constant per megaflow: the pipeline unwildcards the
  // fields it probes, and varying them per connection would shatter each
  // intended megaflow into one aggregate per (in_port, eth_src) combo.
  p.key.set_in_port(1 + static_cast<uint32_t>(m % 4));
  p.key.set_eth_src(EthAddr(0, 0, 0, 0, 0, static_cast<uint8_t>(1 + m % 4)));
  p.key.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0x99));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(192, 168, static_cast<uint8_t>(c.b2),
                        static_cast<uint8_t>(m % 4)));
  // Octet 4 is entirely host bits at /17../24, so the per-connection
  // variant stays inside one megaflow.
  p.key.set_nw_dst(Ipv4(static_cast<uint8_t>(10 + c.g),
                        static_cast<uint8_t>(c.b2),
                        static_cast<uint8_t>((c.hi << (7 - c.g)) % 256),
                        static_cast<uint8_t>(1 + v)));
  p.key.set_tp_src(static_cast<uint16_t>(2000 + i));
  p.key.set_tp_dst(443);
  p.size_bytes = 100;
  return p;
}

// One rule per /17+g subnet the traffic actually uses, forwarding to the
// group's egress port (plus `port_shift`, the churn loop's rewiring knob).
// `only_group` restricts to one group (SIZE_MAX = all).
void add_group_rules(Switch& sw, size_t n_flows, size_t only_group,
                     size_t port_shift) {
  std::unordered_set<uint32_t> seen;
  for (size_t m = 0; m * kConnsPerMegaflow < n_flows; ++m) {
    const MfCoords c = mf_coords(m);
    if (only_group != SIZE_MAX && c.g != only_group) continue;
    const auto key = static_cast<uint32_t>((c.g << 20) | (c.b2 << 8) | c.hi);
    if (!seen.insert(key).second) continue;
    sw.table(0).add_flow(
        MatchBuilder().tcp().nw_dst_prefix(
            Ipv4(static_cast<uint8_t>(10 + c.g), static_cast<uint8_t>(c.b2),
                 static_cast<uint8_t>((c.hi << (7 - c.g)) % 256), 0),
            static_cast<unsigned>(17 + c.g)),
        10,
        OfActions().output(
            100 + static_cast<uint32_t>((c.g + port_shift) % kGroups)));
  }
}

std::unique_ptr<Switch> make_switch(size_t slots, const SwitchConfig& base,
                                    size_t n_flows) {
  SwitchConfig cfg = base;
  cfg.offload_slots = slots;
  // Let the tail earn slots too: at these rates a mid-popularity megaflow
  // sees on the order of one packet per dump interval, and an EWMA bar at
  // the default 1.0 would churn slots that are in fact worth keeping.
  cfg.offload_min_ewma = 0.25;
  auto sw = std::make_unique<Switch>(cfg);
  for (uint32_t p = 1; p <= 4; ++p) sw->add_port(p);
  for (uint32_t e = 100; e < 100 + kGroups; ++e) sw->add_port(e);
  add_group_rules(*sw, n_flows, SIZE_MAX, 0);
  return sw;
}

uint64_t fnv1a(const std::vector<std::string>& strs) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::string& s : strs)
    for (char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
  return h;
}

struct SweepResult {
  size_t slots = 0;
  double hit_rate = 0;       // offload hits / measured packets
  double mpps = 0;           // modeled single-core Mpps, measured phase
  double emc_rate = 0;       // microflow hits / measured packets
  double mf_rate = 0;        // megaflow hits / measured packets
  double miss_rate = 0;      // upcalled / measured packets
  double tuples_per_hit = 0; // megaflow TSS depth, measured phase
  uint64_t installs = 0;
  uint64_t evicts = 0;
  uint64_t delivered = 0;    // packets out the group egress ports
  uint64_t delivery_fp = 0;  // per-port tx fingerprint (whole run)
  uint64_t counter_fp = 0;   // determinism fingerprint (whole run)
};

SweepResult run_sweep_point(size_t slots, const Params& P) {
  SwitchConfig base;
  base.flow_limit = 200000;
  std::unique_ptr<Switch> sw = make_switch(slots, base, P.n_flows);
  Switch* swp = sw.get();

  SkewSampler skew(P.n_flows, P.zipf_s);
  Rng rng(P.seed);
  VirtualClock clock;
  const size_t pkts_per_tick = std::max<size_t>(1, P.pps / 1000);
  const auto warm_ticks = static_cast<size_t>(P.warmup_seconds * 1000);
  const auto meas_ticks = static_cast<size_t>(P.measure_seconds * 1000);

  double kernel0 = 0;
  Datapath::Stats s0;
  for (size_t tick = 0; tick < warm_ticks + meas_ticks; ++tick) {
    if (tick == warm_ticks) {
      kernel0 = swp->cpu().kernel_cycles;
      s0 = swp->backend().stats();
    }
    for (size_t i = 0; i < pkts_per_tick; ++i)
      swp->inject(flow_packet(skew.sample(rng)), clock.now());
    swp->handle_upcalls(clock.now(), P.handler_budget);
    clock.advance(kMillisecond);
    if ((tick + 1) % P.maintenance_ms == 0) swp->run_maintenance(clock.now());
  }

  SweepResult r;
  r.slots = slots;
  const Datapath::Stats d = swp->backend().stats();
  const auto measured = static_cast<double>(d.packets - s0.packets);
  if (measured > 0) {
    r.hit_rate = static_cast<double>(d.offload_hits - s0.offload_hits) /
                 measured;
    r.emc_rate = static_cast<double>(d.microflow_hits - s0.microflow_hits) /
                 measured;
    r.mf_rate = static_cast<double>(d.megaflow_hits - s0.megaflow_hits) /
                measured;
    r.miss_rate = static_cast<double>(d.misses - s0.misses) / measured;
  }
  const double kernel = swp->cpu().kernel_cycles - kernel0;
  r.mpps = kernel == 0 ? 0 : measured / base.cost.seconds(kernel) / 1e6;
  const auto mf_hits = static_cast<double>(d.megaflow_hits - s0.megaflow_hits);
  r.tuples_per_hit =
      mf_hits == 0 ? 0
                   : static_cast<double>(d.tuples_searched - s0.tuples_searched) /
                         mf_hits;
  r.installs = swp->counters().offload_installs;
  r.evicts = swp->counters().offload_evicts;

  std::vector<std::string> ports;
  uint64_t delivered = 0;
  for (uint32_t e = 100; e < 100 + kGroups; ++e) {
    delivered += swp->port_stats(e).tx_packets;
    ports.push_back(std::to_string(e) + ":" +
                    std::to_string(swp->port_stats(e).tx_packets));
  }
  r.delivered = delivered;
  r.delivery_fp = fnv1a(ports);
  const Switch::Counters& c = swp->counters();
  r.counter_fp = fnv1a(
      {std::to_string(c.flow_setups), std::to_string(c.upcalls_handled),
       std::to_string(c.offload_installs), std::to_string(c.offload_evicts),
       std::to_string(d.packets), std::to_string(d.offload_hits),
       std::to_string(d.misses), std::to_string(r.delivery_fp)});
  return r;
}

// Churn + crash/restart loop: returns misdelivered-after-recovery count, or
// SIZE_MAX when the final coherence check fails.
size_t run_churn_crash(const Params& P, size_t slots) {
  FaultInjector fault(P.seed);
  const size_t n_flows = 4000;
  SwitchConfig base;
  base.flow_limit = 200000;
  base.fault = &fault;
  std::unique_ptr<Switch> sw = make_switch(slots, base, n_flows);
  SkewSampler skew(n_flows, P.zipf_s);
  Rng rng(P.seed + 1);
  VirtualClock clock;
  const size_t ticks = 8000;
  const std::vector<size_t> crash_ticks = {3000, 5500};
  size_t pkts_per_tick = 12;

  uint64_t mis_floor = 0;  // bogus-port deliveries excused by blackouts
  bool serving_prev = true;
  size_t churn_gen = 0;
  for (size_t tick = 0; tick < ticks; ++tick) {
    for (size_t i = 0; i < pkts_per_tick; ++i)
      sw->inject(flow_packet(skew.sample(rng)), clock.now());
    sw->handle_upcalls(clock.now(), P.handler_budget);
    clock.advance(kMillisecond);

    const bool crash_now =
        std::find(crash_ticks.begin(), crash_ticks.end(), tick) !=
        crash_ticks.end();
    if (crash_now) {
      const uint64_t occ = fault.occurrences(FaultPoint::kUserspaceCrash);
      fault.arm_window(FaultPoint::kUserspaceCrash, occ, occ + 1);
      sw->run_maintenance(clock.now());
      // Blackout rot: offloaded slots and megaflow entries desynchronized
      // to the bogus port while no daemon is watching.
      for (size_t k = 0; k < 16; ++k) {
        sw->backend().offload_corrupt(
            k * 7, OffloadTable::Corruption::kStaleActions);
        sw->backend().corrupt_entry(k * 13);
      }
    } else if ((tick + 1) % P.maintenance_ms == 0) {
      sw->run_maintenance(clock.now());
      if (sw->lifecycle() == LifecycleState::kServing) {
        sw->self_check();
        // Mid-run churn: rewire one whole rule group to another egress
        // port. Stale megaflow and offload copies may forward to the old
        // (real) port until the next revalidation pass — never to the
        // bogus one.
        const size_t g = churn_gen++ % kGroups;
        size_t n = 0;
        char buf[48];
        std::snprintf(buf, sizeof buf, "ip, nw_dst=%zu.0.0.0/8", 10 + g);
        sw->del_flows(buf, &n);
        add_group_rules(*sw, n_flows, g, churn_gen);
      }
    }
    // Packets misdelivered while crashed/reconciling are the blackout
    // shadow; everything after the daemon serves again is gated. The floor
    // also advances on the restart tick itself: its packets were injected
    // before run_maintenance() brought the daemon back.
    const bool serving_now = sw->lifecycle() == LifecycleState::kServing;
    if (!serving_now || !serving_prev)
      mis_floor = sw->port_stats(kBogusPort).tx_packets;
    serving_prev = serving_now;
  }

  const uint64_t mis_after = sw->port_stats(kBogusPort).tx_packets - mis_floor;
  const DpCheckReport rep = run_dp_check(sw->backend());
  if (!rep.ok() || !sw->self_check().ok()) return SIZE_MAX;
  return static_cast<size_t>(mis_after);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Params P;
  if (flags.boolean("quick", false)) {
    P.n_flows = 40000;
    P.pps = 20000;
    P.warmup_seconds = 3;
    P.measure_seconds = 2;
    P.sizes = {0, 256, 4096};
  }
  P.n_flows = flags.u64("flows", P.n_flows);
  P.zipf_s = flags.f64("zipf", P.zipf_s);
  P.pps = flags.u64("pps", P.pps);
  P.seed = flags.u64("seed", P.seed);

  BenchReport report("offload");
  std::printf("NIC offload tier: %zu flows, zipf s=%.2f, %zu rule groups "
              "(masks /17../24), %zu pps\n",
              P.n_flows, P.zipf_s, kGroups, P.pps);
  print_rule('=');
  std::printf("%-8s %8s %8s %6s %6s %6s %9s %8s %8s\n", "slots", "hit_rate",
              "mpps", "emc%", "mf%", "miss%", "tuples/mf", "installs",
              "evicts");
  print_rule();

  std::vector<SweepResult> rows;
  for (size_t slots : P.sizes) {
    rows.push_back(run_sweep_point(slots, P));
    const SweepResult& r = rows.back();
    std::printf("%-8zu %7.1f%% %8.2f %5.1f%% %5.1f%% %5.1f%% %9.2f %8llu "
                "%8llu\n",
                r.slots, 100 * r.hit_rate, r.mpps, 100 * r.emc_rate,
                100 * r.mf_rate, 100 * r.miss_rate, r.tuples_per_hit,
                static_cast<unsigned long long>(r.installs),
                static_cast<unsigned long long>(r.evicts));
    report.add("hit_rate", r.hit_rate, {{"slots", std::to_string(r.slots)}});
    report.add("model_mpps", r.mpps, {{"slots", std::to_string(r.slots)}});
    report.add("offload_installs", static_cast<double>(r.installs),
               {{"slots", std::to_string(r.slots)}});
  }
  print_rule();

  const auto* off = &rows[0];
  const SweepResult* at4k = nullptr;
  for (const SweepResult& r : rows)
    if (r.slots == 4096) at4k = &r;
  if (at4k == nullptr) at4k = &rows.back();

  const double speedup = off->mpps == 0 ? 0 : at4k->mpps / off->mpps;
  const bool gate_speedup = speedup >= 1.3;
  bool gate_delivery = off->hit_rate == 0 && off->delivered > 0;
  for (const SweepResult& r : rows)
    gate_delivery = gate_delivery && r.delivery_fp == off->delivery_fp;
  const SweepResult replay = run_sweep_point(at4k->slots, P);
  const bool gate_determinism = replay.counter_fp == at4k->counter_fp;
  const size_t mis = run_churn_crash(P, 1024);
  const bool gate_churn = mis == 0;

  std::printf("model speedup at %zu slots vs off: %.2fx  [gate >= 1.3x: %s]\n",
              at4k->slots, speedup, gate_speedup ? "PASS" : "FAIL");
  std::printf("delivery fingerprint invariant across sizes, off-mode inert: "
              "%s\n", gate_delivery ? "PASS" : "FAIL");
  std::printf("misdelivered after recovery (churn + 2 crashes, slots=1024): "
              "%s  [gate == 0: %s]\n",
              mis == SIZE_MAX ? "dp_check FAILED" : std::to_string(mis).c_str(),
              gate_churn ? "PASS" : "FAIL");
  std::printf("deterministic replay from seed %llu: %s\n",
              static_cast<unsigned long long>(P.seed),
              gate_determinism ? "PASS" : "FAIL");

  report.add("speedup_4k", speedup);
  report.add("misdelivered_after", mis == SIZE_MAX ? -1.0
                                                   : static_cast<double>(mis));
  report.add("delivery_invariant", gate_delivery ? 1 : 0);
  report.add("deterministic", gate_determinism ? 1 : 0);
  report.write();

  return gate_speedup && gate_delivery && gate_churn && gate_determinism ? 0
                                                                         : 1;
}
