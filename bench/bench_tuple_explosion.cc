// Tuple-space explosion robustness bench (DESIGN.md §14): one attacker
// tenant installs pairwise-incomparable wildcard rules (constant-sum prefix
// quadruples, workload/explosion.h) and sprays packets whose unmasked bits
// are fresh noise, so every megaflow inherits a distinct fine mask and the
// kernel tuple space explodes — the Csikor et al. attack. A victim tenant
// carries ordinary service traffic through the same switch.
//
// Three defense configurations run the identical offered load:
//
//   off     — no cap, no partition, degradation policies disabled: the
//             historical switch, where the attacker's tuples tax every
//             victim lookup;
//   detect  — mask-explosion detector only (DegradationConfig subtable +
//             probe-EWMA triggers driving the AIMD flow-limit machine):
//             mitigation without admission control;
//   full    — per-tenant mask admission cap + tenant-partitioned classifier
//             + detector: the shipped defense stack.
//
// The bench prints a degradation curve (kernel tuples x victim model Mpps,
// defenses off vs. full, over an attacker rule-budget sweep) and gates by
// exit code:
//   1. full-defense victim goodput >= 5x the off ablation's at the largest
//      attack budget (goodput = victim packets delivered per modeled
//      kernel second — the attacker's per-lookup tuple tax is what sinks
//      the ablation);
//   2. full-defense victim p99 probe depth <= the configured budget
//      (mask cap + victim-mask slop), measured per victim inject from the
//      datapath tuples_searched delta;
//   3. zero misdelivery in every run: victim packets reach exactly the
//      victim egress port, attacker packets (drop rules) reach no port;
//   4. the admission cap holds exactly: installed attacker rules == cap,
//      the rest rejected;
//   5. the detector engages under full attack in the detect config;
//   6. deterministic replay: two full-defense runs from one seed produce
//      identical counter fingerprints.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "util/rng.h"
#include "vswitchd/switch.h"
#include "workload/explosion.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

constexpr uint32_t kAttackPort = 1;
constexpr uint32_t kVictimPort = 2;
constexpr uint32_t kVictimEgress = 12;
constexpr uint64_t kAttackTenant = 1;
constexpr uint64_t kVictimTenant = 2;
constexpr uint16_t kServices[] = {80, 443, 8080, 5001};

struct Params {
  double sim_seconds = 6;
  double attack_from = 1;      // attack window [from, to) in seconds
  double attack_to = 5;
  size_t attack_pps = 20000;
  size_t victim_pps = 4000;
  size_t victim_conns = 256;
  size_t max_rules = 1024;     // largest attacker rule budget in the sweep
  size_t mask_cap = 8;         // full-defense per-tenant admission cap
  size_t probe_budget_slop = 8;  // victim masks + measurement slack
  size_t detect_subtables = 64;
  double detect_probe_ewma = 32;
  size_t handler_budget = 32;  // upcalls serviced per 1 ms tick
  uint64_t seed = 11;

  size_t probe_budget() const { return mask_cap + probe_budget_slop; }
};

enum class Defense { kOff, kDetect, kFull };

const char* defense_name(Defense d) {
  switch (d) {
    case Defense::kOff: return "off";
    case Defense::kDetect: return "detect";
    case Defense::kFull: return "full";
  }
  return "?";
}

struct Outcome {
  // Attack-window measurements.
  uint64_t victim_offered = 0;
  uint64_t victim_delivered = 0;
  uint64_t attack_offered = 0;
  double kernel_cycles = 0;      // Switch cpu() delta over the window
  uint64_t probe_p99 = 0;        // p99 tuples searched per victim inject
  uint64_t dp_masks_peak = 0;    // kernel tuple count, sampled each tick
  size_t cls_subtables = 0;      // userspace subtables at window end
  // Whole-run counters.
  uint64_t misdelivered = 0;
  size_t rules_installed = 0;
  size_t rules_rejected = 0;
  uint64_t detector_engaged = 0;
  uint64_t flows_at_end = 0;
  std::vector<uint64_t> fingerprint;

  // Victim packets per modeled kernel second, in Mpps: the attacker's
  // per-lookup tuple tax inflates the denominator, which is the damage.
  double victim_mpps(const CostModel& cost) const {
    if (kernel_cycles <= 0) return 0;
    return static_cast<double>(victim_delivered) /
           cost.seconds(kernel_cycles) / 1e6;
  }
};

struct VictimConn {
  uint32_t src = 0;
  uint16_t sport = 0;
  uint16_t service = 0;
};

Packet victim_packet(const VictimConn& c) {
  Packet p;
  p.key.set_in_port(kVictimPort);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set(FieldId::kNwSrc, c.src);
  p.key.set(FieldId::kNwDst, Ipv4(10, 200, 0, 1).value());
  p.key.set(FieldId::kTpSrc, c.sport);
  p.key.set(FieldId::kTpDst, c.service);
  return p;
}

Outcome run_attack(Defense d, size_t n_rules, const Params& P) {
  SwitchConfig cfg;
  cfg.flow_limit = 20000;
  cfg.degradation.enabled = d != Defense::kOff;
  if (d != Defense::kOff) {
    cfg.degradation.mask_explosion_subtables = P.detect_subtables;
    cfg.degradation.mask_probe_ewma_threshold = P.detect_probe_ewma;
  }
  if (d == Defense::kFull) {
    cfg.max_masks_per_tenant = P.mask_cap;
    cfg.classifier.tenant_partition = true;
  }
  Switch sw(cfg);
  sw.add_port(kAttackPort);
  sw.add_port(kVictimPort);
  sw.add_port(kVictimEgress);

  // Table 0 stamps the tenant (metadata) from the ingress port, table 1
  // holds per-tenant policy: the victim's service allows and, once the
  // attack starts, the attacker's explosion rules.
  sw.table(0).add_flow(
      MatchBuilder().in_port(kAttackPort), 10,
      OfActions().set_field(FieldId::kMetadata, kAttackTenant).resubmit(1));
  sw.table(0).add_flow(
      MatchBuilder().in_port(kVictimPort), 10,
      OfActions().set_field(FieldId::kMetadata, kVictimTenant).resubmit(1));
  for (uint16_t svc : kServices)
    sw.table(1).add_flow(
        MatchBuilder().metadata(kVictimTenant).tcp().tp_dst(svc), 10,
        OfActions().output(kVictimEgress));

  Outcome out;
  sw.set_output_handler([&out](uint32_t port, const Packet& pkt) {
    if (port != kVictimEgress ||
        pkt.key.get(FieldId::kInPort) != kVictimPort)
      ++out.misdelivered;
  });

  Rng rng(P.seed);
  std::vector<VictimConn> conns(P.victim_conns);
  for (auto& c : conns) {
    c.src = Ipv4(10, 100, static_cast<uint8_t>(rng.uniform(256)),
                 static_cast<uint8_t>(rng.uniform(256)))
                .value();
    c.sport = static_cast<uint16_t>(rng.range(1024, 65535));
    c.service = kServices[rng.uniform(std::size(kServices))];
  }

  ExplosionConfig ec;
  ec.tenant = kAttackTenant;
  ec.n_rules = n_rules;
  ec.in_port = kAttackPort;
  ec.seed = P.seed ^ 0xa77acull;
  ExplosionWorkload attack(ec);

  VirtualClock clock;
  const auto ticks = static_cast<size_t>(P.sim_seconds * 1000.0);
  const auto attack_first = static_cast<size_t>(P.attack_from * 1000.0);
  const auto attack_last = static_cast<size_t>(P.attack_to * 1000.0);

  double kernel0 = 0;
  uint64_t victim_tx0 = 0;
  std::vector<uint64_t> victim_probes;
  victim_probes.reserve((attack_last - attack_first) * P.victim_pps / 1000);

  for (size_t tick = 0; tick < ticks; ++tick) {
    const bool attack_on =
        n_rules > 0 && tick >= attack_first && tick < attack_last;
    if (tick == attack_first) {
      if (n_rules > 0) {
        const ExplosionInstall ins = install_explosion_rules(sw, 1, ec);
        out.rules_installed = ins.installed;
        out.rules_rejected = ins.rejected;
      }
      kernel0 = sw.cpu().kernel_cycles;
      victim_tx0 = sw.port_stats(kVictimEgress).tx_packets;
    }

    if (attack_on) {
      const size_t n = P.attack_pps / 1000;
      for (size_t i = 0; i < n; ++i)
        sw.inject(attack.next(), clock.now());
      out.attack_offered += n;
    }
    const bool windowed = tick >= attack_first && tick < attack_last;
    const size_t nv = P.victim_pps / 1000;
    for (size_t i = 0; i < nv; ++i) {
      const Packet p = victim_packet(conns[rng.uniform(conns.size())]);
      if (windowed) {
        const uint64_t t0 = sw.datapath().stats().tuples_searched;
        sw.inject(p, clock.now());
        victim_probes.push_back(sw.datapath().stats().tuples_searched - t0);
      } else {
        sw.inject(p, clock.now());
      }
    }
    if (windowed) {
      out.victim_offered += nv;
      out.dp_masks_peak =
          std::max(out.dp_masks_peak,
                   static_cast<uint64_t>(sw.backend().mask_count()));
    }

    sw.handle_upcalls(clock.now(), P.handler_budget);
    clock.advance(kMillisecond);
    if ((tick + 1) % 250 == 0) sw.run_maintenance(clock.now());

    if (tick + 1 == attack_last) {
      out.kernel_cycles = sw.cpu().kernel_cycles - kernel0;
      out.victim_delivered =
          sw.port_stats(kVictimEgress).tx_packets - victim_tx0;
      out.cls_subtables = sw.cls_subtables();
    }
  }

  if (!victim_probes.empty()) {
    std::sort(victim_probes.begin(), victim_probes.end());
    out.probe_p99 = victim_probes[(victim_probes.size() - 1) * 99 / 100];
  }

  const Switch::Counters& c = sw.counters();
  out.detector_engaged = c.mask_explosion_engaged;
  out.flows_at_end = sw.datapath().flow_count();
  const Datapath::Stats& dp = sw.datapath().stats();
  out.fingerprint = {c.flow_setups,
                     c.upcalls_handled,
                     c.upcalls_dropped,
                     c.install_fails,
                     c.flow_limit_backoffs,
                     c.flow_adds_attempted,
                     c.flow_adds_admitted,
                     c.rules_rejected_mask_cap,
                     c.mask_explosion_engaged,
                     c.evicted_flow_limit,
                     c.tx_packets,
                     dp.packets,
                     dp.misses,
                     dp.tuples_searched,
                     dp.emc_inserts,
                     out.flows_at_end,
                     out.victim_delivered,
                     out.misdelivered,
                     out.dp_masks_peak,
                     out.probe_p99,
                     static_cast<uint64_t>(out.cls_subtables)};
  return out;
}

void print_row(size_t rules, Defense d, const Outcome& o,
               const CostModel& cost) {
  std::printf("%7zu %-7s %9llu %9zu %12.3f %10llu %9zu %8llu %7llu\n", rules,
              defense_name(d),
              static_cast<unsigned long long>(o.dp_masks_peak),
              o.cls_subtables, o.victim_mpps(cost),
              static_cast<unsigned long long>(o.probe_p99), o.rules_rejected,
              static_cast<unsigned long long>(o.detector_engaged),
              static_cast<unsigned long long>(o.misdelivered));
}

void report_run(BenchReport& report, size_t rules, Defense d,
                const Outcome& o, const CostModel& cost) {
  const std::map<std::string, std::string> params = {
      {"rules", std::to_string(rules)}, {"defense", defense_name(d)}};
  report.add("victim_mpps", o.victim_mpps(cost), params, o.victim_offered);
  report.add("dp_masks_peak", static_cast<double>(o.dp_masks_peak), params);
  report.add("cls_subtables", static_cast<double>(o.cls_subtables), params);
  report.add("victim_probe_p99", static_cast<double>(o.probe_p99), params,
             o.victim_offered);
  report.add("rules_rejected", static_cast<double>(o.rules_rejected), params);
  report.add("detector_engaged", static_cast<double>(o.detector_engaged),
             params);
  report.add("misdelivered", static_cast<double>(o.misdelivered), params);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Params P;
  if (flags.boolean("quick", false)) {
    P.sim_seconds = 2.5;
    P.attack_from = 0.5;
    P.attack_to = 2;
    P.attack_pps = 10000;
    P.victim_pps = 2000;
    P.max_rules = 512;
  }
  P.sim_seconds = flags.f64("seconds", P.sim_seconds);
  P.attack_pps = flags.u64("attack_pps", P.attack_pps);
  P.victim_pps = flags.u64("victim_pps", P.victim_pps);
  P.max_rules = flags.u64("rules", P.max_rules);
  P.mask_cap = flags.u64("mask_cap", P.mask_cap);
  P.seed = flags.u64("seed", P.seed);
  const CostModel cost;

  BenchReport report("tuple_explosion");
  std::printf("Tuple-space explosion: attacker tenant %llu, %zu rules max, "
              "%zu pps; victim %zu pps; mask cap %zu\n",
              static_cast<unsigned long long>(kAttackTenant), P.max_rules,
              P.attack_pps, P.victim_pps, P.mask_cap);
  print_rule('=');
  std::printf("%7s %-7s %9s %9s %12s %10s %9s %8s %7s\n", "rules", "defense",
              "dp_masks", "subtbl", "victim_Mpps", "probe_p99", "rejected",
              "engaged", "misdel");
  print_rule();

  // Degradation curve: attacker rule budget x {off, full}. The two runs at
  // the largest budget double as the gated ablation and hardened runs.
  std::vector<size_t> budgets = {0, P.max_rules / 8, P.max_rules / 2,
                                 P.max_rules};
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  Outcome ablation, hardened;
  for (size_t rules : budgets) {
    for (Defense d : {Defense::kOff, Defense::kFull}) {
      const Outcome o = run_attack(d, rules, P);
      print_row(rules, d, o, cost);
      report_run(report, rules, d, o, cost);
      if (rules == P.max_rules) (d == Defense::kOff ? ablation : hardened) = o;
    }
  }
  const Outcome detect = run_attack(Defense::kDetect, P.max_rules, P);
  print_row(P.max_rules, Defense::kDetect, detect, cost);
  report_run(report, P.max_rules, Defense::kDetect, detect, cost);
  const Outcome replay = run_attack(Defense::kFull, P.max_rules, P);
  print_rule();

  const double ratio =
      hardened.victim_mpps(cost) / std::max(1e-9, ablation.victim_mpps(cost));
  const uint64_t misdelivered = ablation.misdelivered + hardened.misdelivered +
                                detect.misdelivered + replay.misdelivered;
  const size_t want_installed = std::min(P.max_rules, P.mask_cap);

  const bool gate_goodput = ratio >= 5.0;
  const bool gate_probe = hardened.probe_p99 <= P.probe_budget();
  const bool gate_misdeliver = misdelivered == 0;
  const bool gate_cap = hardened.rules_installed == want_installed &&
                        hardened.rules_rejected == P.max_rules - want_installed;
  const bool gate_detect = detect.detector_engaged >= 1;
  const bool deterministic = hardened.fingerprint == replay.fingerprint;

  std::printf("victim goodput ratio (full / off): %.1fx  [gate >= 5.0: %s]\n",
              ratio, gate_goodput ? "PASS" : "FAIL");
  std::printf("full-defense victim probe p99: %llu  [gate <= %zu: %s]\n",
              static_cast<unsigned long long>(hardened.probe_p99),
              P.probe_budget(), gate_probe ? "PASS" : "FAIL");
  std::printf("misdelivered packets across all runs: %llu  [gate == 0: %s]\n",
              static_cast<unsigned long long>(misdelivered),
              gate_misdeliver ? "PASS" : "FAIL");
  std::printf("admission cap: installed %zu rejected %zu  "
              "[gate == %zu/%zu: %s]\n",
              hardened.rules_installed, hardened.rules_rejected,
              want_installed, P.max_rules - want_installed,
              gate_cap ? "PASS" : "FAIL");
  std::printf("detector engagements (detect config): %llu  [gate >= 1: %s]\n",
              static_cast<unsigned long long>(detect.detector_engaged),
              gate_detect ? "PASS" : "FAIL");
  std::printf("deterministic replay from seed %llu: %s\n",
              static_cast<unsigned long long>(P.seed),
              deterministic ? "PASS" : "FAIL");

  report.add("goodput_ratio", ratio);
  report.add("deterministic", deterministic ? 1 : 0);
  report.write();

  const bool pass = gate_goodput && gate_probe && gate_misdeliver &&
                    gate_cap && gate_detect && deterministic;
  if (pass) std::printf("PASS: all tuple-explosion gates met\n");
  return pass ? 0 : 1;
}
