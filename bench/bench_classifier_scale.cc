// Classifier engine shoot-out at production scale: 10^5..10^6 rules spread
// over hundreds-to-thousands of masks structured as nested-prefix families
// (workload/table_gen.h), driven by Zipf-skewed traffic plus a rule-churn
// phase. Every engine behind the ClassifierBackend seam runs the identical
// table and packet sequence; the bench gates BY EXIT CODE on
//
//   1. zero result divergence: the (winner priority, wildcards) digest over
//      the whole packet stream is identical for every engine, before AND
//      after churn, and the bloom engine's lookup_batch digest equals its
//      scalar digest;
//   2. the chained-tuple engine beating staged TSS by >= 1.5x in MODEL
//      cycles per lookup at >= 512 masks (CostModel cls_* costs priced from
//      each engine's own stats delta — deterministic, host-independent);
//
// wall-clock rates are reported (and written to BENCH_classifier_scale.json)
// but never gate: the model mode is authoritative, real-mode divergence
// from it only warns.
//
// --quick=1 shrinks the grid for CI smoke (two cells, 60k rules).
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "classifier/classifier.h"
#include "sim/cost_model.h"
#include "workload/table_gen.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

constexpr ClassifierEngine kEngines[] = {ClassifierEngine::kStagedTss,
                                         ClassifierEngine::kChainedTuple,
                                         ClassifierEngine::kBloomGated};

uint64_t mix64(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Prices one engine's stats delta with the CostModel cls_* costs.
double model_cycles(const ClassifierStats& st, const CostModel& m) {
  return m.cls_lookup_fixed * static_cast<double>(st.lookups) +
         m.cls_tuple_probe *
             static_cast<double>(st.tuples_searched - st.stage_terminations) +
         m.cls_stage_term * static_cast<double>(st.stage_terminations) +
         m.cls_tuple_skip * static_cast<double>(st.tuples_skipped) +
         m.cls_gate_probe * static_cast<double>(st.gate_probes) +
         m.cls_guide_probe * static_cast<double>(st.guide_probes);
}

// Two digests per pass. `result` covers winner priorities only — the
// cross-engine equivalence gate, since engines legitimately generate
// DIFFERENT (each individually sound) wildcard masks. `full` additionally
// folds in the wildcards — the within-engine batch-vs-scalar gate, where
// byte-identical megaflows are required.
struct Digests {
  uint64_t result = 0xcbf29ce484222325ull;
  uint64_t full = 0xcbf29ce484222325ull;

  void fold(const Rule* r, const FlowWildcards& wc) {
    result = mix64(
        result, r != nullptr ? static_cast<uint64_t>(r->priority()) : 0);
    full = mix64(full, result);
    for (size_t w = 0; w < kFlowWords; ++w) full = mix64(full, wc.w[w]);
  }
};

struct EngineRun {
  Digests scalar;          // Zipf stream through lookup()
  Digests batch;           // same stream through lookup_batch()
  Digests churned;         // scalar digest after the churn phase
  double model_cyc_per_lookup = 0;
  double wall_klookups_s = 0;
  double wall_batch_klookups_s = 0;
  double churn_updates_s = 0;
  size_t masks_built = 0;
  size_t subtables = 0;     // per-mask hash tables maintained
  size_t probe_depth = 0;   // structural per-lookup probe bound
};

Digests digest_scalar(const Classifier& cls,
                      const std::vector<FlowKey>& pkts) {
  Digests d;
  for (const FlowKey& k : pkts) {
    FlowWildcards wc;
    d.fold(cls.lookup(k, &wc), wc);
  }
  return d;
}

Digests digest_batch(const Classifier& cls,
                     const std::vector<FlowKey>& pkts) {
  constexpr size_t kBlock = 128;
  Digests d;
  std::vector<const Rule*> out(kBlock);
  std::vector<FlowWildcards> wcs(kBlock);
  for (size_t i = 0; i < pkts.size(); i += kBlock) {
    const size_t n = std::min(kBlock, pkts.size() - i);
    for (size_t j = 0; j < n; ++j) wcs[j] = FlowWildcards{};
    cls.lookup_batch(&pkts[i], n, out.data(), wcs.data());
    for (size_t j = 0; j < n; ++j) d.fold(out[j], wcs[j]);
  }
  return d;
}

EngineRun run_engine(ClassifierEngine engine, size_t n_rules, size_t n_masks,
                     uint64_t cell_seed, const std::vector<FlowKey>& pkts,
                     size_t churn_ops, const CostModel& cost) {
  ClassifierConfig cfg;
  cfg.engine = engine;
  Classifier cls(cfg);
  Rng rng(cell_seed);  // same seed per engine -> identical rule set
  std::vector<std::unique_ptr<OwnedRule>> rules =
      build_scale_classifier(cls, n_rules, n_masks, rng);

  EngineRun out;
  out.masks_built = cls.tuple_count();
  out.subtables = cls.n_subtables();
  out.probe_depth = cls.max_probe_depth();

  // Scalar pass: one timed loop yields the digest, the wall rate, and (via
  // the stats delta) the model cycle count.
  cls.reset_stats();
  double t0 = now_s();
  out.scalar = digest_scalar(cls, pkts);
  double t1 = now_s();
  const ClassifierStats st = cls.stats();
  out.model_cyc_per_lookup =
      model_cycles(st, cost) / static_cast<double>(pkts.size());
  out.wall_klookups_s =
      static_cast<double>(pkts.size()) / (t1 - t0) / 1e3;

  // Batch pass (every engine: non-native engines exercise the scalar
  // fallback, the bloom engine its SoA pipeline).
  t0 = now_s();
  out.batch = digest_batch(cls, pkts);
  t1 = now_s();
  out.wall_batch_klookups_s =
      static_cast<double>(pkts.size()) / (t1 - t0) / 1e3;

  // Churn phase: deterministic remove/re-insert ops. The decision sequence
  // depends only on sizes, which evolve identically across engines, so the
  // same seed replays the same ops everywhere.
  Rng crng(cell_seed ^ 0xC0FFEEull);
  std::vector<Rule*> live;
  live.reserve(rules.size());
  for (const auto& r : rules) live.push_back(r.get());
  std::vector<Rule*> parked;
  t0 = now_s();
  for (size_t u = 0; u < churn_ops; ++u) {
    if (!parked.empty() && crng.chance(0.5)) {
      cls.insert(parked.back());
      live.push_back(parked.back());
      parked.pop_back();
    } else if (!live.empty()) {
      const size_t idx = crng.uniform(live.size());
      cls.remove(live[idx]);
      parked.push_back(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  t1 = now_s();
  out.churn_updates_s = static_cast<double>(churn_ops) / (t1 - t0);
  out.churned = digest_scalar(cls, pkts);
  return out;
}

int bench_main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.boolean("quick", false);
  const size_t n_rules = flags.u64("rules", quick ? 60000 : 200000);
  const size_t n_pkts = flags.u64("packets", quick ? 20000 : 50000);
  const size_t churn_ops = flags.u64("churn_ops", quick ? 3000 : 10000);
  const bool big = flags.boolean("big", !quick);
  const double miss_frac = flags.f64("miss_fraction", 0.1);
  const CostModel cost;

  struct Cell {
    size_t masks;
    size_t rules;
  };
  std::vector<Cell> cells;
  if (quick) {
    cells = {{128, n_rules}, {512, n_rules}};
  } else {
    cells = {{64, n_rules}, {256, n_rules}, {512, n_rules}, {1024, n_rules}};
    if (big) cells.push_back({1024, 1000000});
  }

  BenchReport report("classifier_scale");
  int rc = 0;
  std::printf("%-7s %-9s %-8s %8s %9s %14s %14s %14s %12s\n", "masks",
              "rules", "engine", "subtbl", "maxprobe", "model cyc/lkp",
              "klookups/s", "batch klkp/s", "churn/s");
  print_rule();

  for (const Cell& cell : cells) {
    const uint64_t cell_seed = cell.masks * 1000003ull + cell.rules;
    // The packet stream comes from a throwaway build of the same table so
    // it is identical for every engine.
    std::vector<FlowKey> pkts;
    {
      ClassifierConfig cfg;
      Classifier scratch(cfg);
      Rng rng(cell_seed);
      std::vector<std::unique_ptr<OwnedRule>> rules =
          build_scale_classifier(scratch, cell.rules, cell.masks, rng);
      Rng prng(cell_seed * 31 + 7);
      pkts.reserve(n_pkts);
      for (size_t i = 0; i < n_pkts; ++i)
        pkts.push_back(zipf_scale_packet(rules, prng, miss_frac));
    }

    std::map<ClassifierEngine, EngineRun> runs;
    for (ClassifierEngine e : kEngines) {
      runs[e] = run_engine(e, cell.rules, cell.masks, cell_seed, pkts,
                           churn_ops, cost);
      const EngineRun& r = runs[e];
      const std::map<std::string, std::string> params = {
          {"masks", std::to_string(cell.masks)},
          {"rules", std::to_string(cell.rules)},
          {"engine", classifier_engine_name(e)}};
      report.add("model_cycles_per_lookup", r.model_cyc_per_lookup, params,
                 n_pkts);
      report.add("wall_klookups_per_s", r.wall_klookups_s, params, n_pkts);
      report.add("wall_batch_klookups_per_s", r.wall_batch_klookups_s,
                 params, n_pkts);
      report.add("churn_updates_per_s", r.churn_updates_s, params,
                 churn_ops);
      report.add("subtables", static_cast<double>(r.subtables), params, 1);
      report.add("max_probe_depth", static_cast<double>(r.probe_depth),
                 params, 1);
      std::printf("%-7zu %-9zu %-8s %8zu %9zu %14.0f %14.1f %14.1f %12.0f\n",
                  cell.masks, cell.rules, classifier_engine_name(e),
                  r.subtables, r.probe_depth, r.model_cyc_per_lookup,
                  r.wall_klookups_s, r.wall_batch_klookups_s,
                  r.churn_updates_s);
    }

    // Gate 1: zero result divergence across engines, pre- and post-churn,
    // and the bloom batch path against its own scalar path.
    const EngineRun& ref = runs[ClassifierEngine::kStagedTss];
    for (ClassifierEngine e : kEngines) {
      const EngineRun& r = runs[e];
      if (r.scalar.result != ref.scalar.result ||
          r.churned.result != ref.churned.result) {
        std::printf("FAIL: %s winners diverge from staged at %zu masks "
                    "(digest %016llx/%016llx vs %016llx/%016llx)\n",
                    classifier_engine_name(e), cell.masks,
                    static_cast<unsigned long long>(r.scalar.result),
                    static_cast<unsigned long long>(r.churned.result),
                    static_cast<unsigned long long>(ref.scalar.result),
                    static_cast<unsigned long long>(ref.churned.result));
        rc = 1;
      }
      // Within an engine the batch path must be byte-identical to its
      // scalar path, wildcards included.
      if (r.batch.full != r.scalar.full) {
        std::printf("FAIL: %s lookup_batch diverges from its scalar path "
                    "at %zu masks\n",
                    classifier_engine_name(e), cell.masks);
        rc = 1;
      }
    }

    // Gate 2 (model mode, authoritative): the chained engine must beat
    // staged TSS by >= 1.5x in model cycles once masks reach 512.
    const double ratio =
        ref.model_cyc_per_lookup /
        runs[ClassifierEngine::kChainedTuple].model_cyc_per_lookup;
    report.add("chained_vs_staged_model_speedup", ratio,
               {{"masks", std::to_string(cell.masks)},
                {"rules", std::to_string(cell.rules)}},
               n_pkts);
    std::printf("chained vs staged (model): %.2fx at %zu masks\n", ratio,
                cell.masks);
    if (cell.masks >= 512) {
      constexpr double kMinSpeedup = 1.5;
      if (ratio < kMinSpeedup) {
        std::printf("FAIL: chained/staged model speedup %.2fx < %.2fx at "
                    "%zu masks\n",
                    ratio, kMinSpeedup, cell.masks);
        rc = 1;
      } else {
        std::printf("PASS: chained/staged model speedup %.2fx >= %.2fx at "
                    "%zu masks\n",
                    ratio, kMinSpeedup, cell.masks);
      }
      // Real mode only warns: wall clocks on shared CI hosts are noise.
      const double wall_ratio =
          runs[ClassifierEngine::kChainedTuple].wall_klookups_s /
          ref.wall_klookups_s;
      if (wall_ratio < 1.0)
        std::printf("WARN: wall-clock chained/staged %.2fx disagrees with "
                    "the model at %zu masks (model is authoritative)\n",
                    wall_ratio, cell.masks);
    }
    print_rule();
  }

  report.write();
  if (rc == 0) std::printf("PASS: all engine digests identical, gates met\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return bench_main(argc, argv); }
