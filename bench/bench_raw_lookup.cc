// Real (wall-clock) microbenchmarks of the classifier and caches. The
// headline reference point is §7.2: "with a randomly generated table of
// half a million flow entries, the implementation is able to do roughly
// 6.8M hash lookups/s, on a single core — which translates to 680,000
// classifications per second with 10 tuples".
//
// The tuple_space_lookup rows with flows=500000 tuples=10 report exactly
// that experiment: divide classifications/s by 10 tuples for the
// per-hash-lookup rate.
//
// Results land in BENCH_raw_lookup.json via BenchReport (schema shared
// with every other bench in this directory):
//   --iters_mult=N   scales every iteration count (default 1)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "classifier/classifier.h"
#include "datapath/concurrent_emc.h"
#include "datapath/datapath.h"
#include "util/cuckoo.h"
#include "util/prefix_trie.h"
#include "workload/table_gen.h"

using namespace ovs;
using namespace ovs::benchutil;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Keeps `v` alive without letting the optimizer see through it.
template <typename T>
inline void keep(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

// Runs `body(i)` `iters` times and returns the measured ops/s.
template <typename F>
double measure(size_t iters, F&& body) {
  const double t0 = now_s();
  for (size_t i = 0; i < iters; ++i) body(i);
  const double t1 = now_s();
  return static_cast<double>(iters) / (t1 - t0);
}

struct LookupFixture {
  Classifier cls;
  std::vector<std::unique_ptr<OwnedRule>> rules;
  std::vector<FlowKey> packets;

  LookupFixture(size_t n_flows, size_t n_tuples, ClassifierConfig cfg)
      : cls(cfg) {
    Rng rng(99);
    rules = build_random_classifier(cls, n_flows, n_tuples, rng);
    for (int i = 0; i < 4096; ++i)
      packets.push_back(random_classifier_packet(rng));
  }
};

void report_row(BenchReport& report, const std::string& metric, double value,
                const std::map<std::string, std::string>& params,
                uint64_t iters) {
  report.add(metric, value, params, iters);
  std::string ptxt;
  for (const auto& [k, v] : params) ptxt += " " + k + "=" + v;
  std::printf("%-34s %14.0f /s%s\n", metric.c_str(), value, ptxt.c_str());
}

int bench_main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t mult = std::max<uint64_t>(1, flags.u64("iters_mult", 1));
  BenchReport report("raw_lookup");

  // --- §7.2 tuple-space lookup scaling (flat TSS, no optimizations) ----------
  for (auto [n_flows, n_tuples] :
       {std::pair<size_t, size_t>{10000, 10},
        {100000, 10},
        {500000, 10},  // the paper's §7.2 data point
        {500000, 30}}) {
    LookupFixture fx(n_flows, n_tuples, ClassifierConfig::all_disabled());
    const size_t iters = 50000 * mult;
    const double rate = measure(iters, [&](size_t i) {
      keep(fx.cls.lookup(fx.packets[i & 4095], nullptr));
    });
    report_row(report, "tuple_space_classifications", rate,
               {{"flows", std::to_string(n_flows)},
                {"tuples", std::to_string(n_tuples)}},
               iters);
    report.add("tuple_space_hash_lookups",
               rate * static_cast<double>(n_tuples),
               {{"flows", std::to_string(n_flows)},
                {"tuples", std::to_string(n_tuples)}},
               iters);
  }

  // --- §5.3 flat vs staged on the same table ---------------------------------
  for (bool staged : {false, true}) {
    ClassifierConfig cfg = ClassifierConfig::all_disabled();
    cfg.staged_lookup = staged;
    LookupFixture fx(100000, 12, cfg);
    const size_t iters = 50000 * mult;
    const double rate = measure(iters, [&](size_t i) {
      keep(fx.cls.lookup(fx.packets[i & 4095], nullptr));
    });
    report_row(report, "flat_vs_staged_classifications", rate,
               {{"staged", staged ? "1" : "0"}}, iters);
  }

  // --- Caching-aware lookup (wildcard accumulation on) -----------------------
  {
    LookupFixture fx(50000, 12, ClassifierConfig{});
    const size_t iters = 100000 * mult;
    const double rate = measure(iters, [&](size_t i) {
      FlowWildcards wc;
      keep(fx.cls.lookup(fx.packets[i & 4095], &wc));
    });
    report_row(report, "lookup_with_wildcards", rate, {}, iters);
  }

  // --- Engine seam: scalar lookup + lookup_batch per engine ------------------
  // A nested-prefix scale table (the chained engine's natural habitat) with
  // Zipf traffic, small enough to keep this bench quick.
  for (ClassifierEngine e :
       {ClassifierEngine::kStagedTss, ClassifierEngine::kChainedTuple,
        ClassifierEngine::kBloomGated}) {
    ClassifierConfig cfg;
    cfg.engine = e;
    Classifier cls(cfg);
    Rng rng(1234);
    std::vector<std::unique_ptr<OwnedRule>> rules =
        build_scale_classifier(cls, 50000, 256, rng);
    Rng prng(4321);
    std::vector<FlowKey> pkts;
    for (int i = 0; i < 4096; ++i)
      pkts.push_back(zipf_scale_packet(rules, prng));
    const size_t iters = 20000 * mult;
    const double rate = measure(iters, [&](size_t i) {
      FlowWildcards wc;
      keep(cls.lookup(pkts[i & 4095], &wc));
    });
    report_row(report, "engine_lookup", rate,
               {{"engine", classifier_engine_name(e)}}, iters);

    constexpr size_t kBlock = 64;
    const Rule* out[kBlock];
    FlowWildcards wcs[kBlock];
    const size_t blocks = std::max<size_t>(1, iters / kBlock);
    const double brate = measure(blocks, [&](size_t i) {
      cls.lookup_batch(&pkts[(i * kBlock) & 4095 & ~(kBlock - 1)], kBlock,
                       out, wcs);
      keep(out[0]);
    });
    report_row(report, "engine_lookup_batch", brate * kBlock,
               {{"engine", classifier_engine_name(e)},
                {"block", std::to_string(kBlock)}},
               blocks * kBlock);
  }

  // --- §3.2 update cost: insert+remove round trip ----------------------------
  {
    Classifier cls;
    Rng rng(7);
    std::vector<std::unique_ptr<OwnedRule>> warm =
        build_random_classifier(cls, 100000, 10, rng);
    Match m = MatchBuilder().tcp().nw_dst(Ipv4(1, 2, 3, 4)).tp_dst(80);
    OwnedRule rule(m, 555);
    const size_t iters = 200000 * mult;
    const double rate = measure(iters, [&](size_t) {
      cls.insert(&rule);
      cls.remove(&rule);
    });
    report_row(report, "insert_remove_roundtrips", rate, {}, iters);
  }

  // --- Datapath cache hits ---------------------------------------------------
  {
    Datapath dp;
    dp.install(MatchBuilder().ip(), DpActions().output(1), 0);
    Packet p;
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kTcp);
    p.key.set_nw_dst(Ipv4(1, 1, 1, 1));
    p.key.set_tp_dst(80);
    dp.receive(p, 0);  // warm: next receive is an EMC hit
    const size_t iters = 500000 * mult;
    const double rate =
        measure(iters, [&](size_t i) { keep(dp.receive(p, i + 1)); });
    report_row(report, "microflow_cache_hits", rate, {}, iters);
  }
  {
    DatapathConfig cfg;
    cfg.microflow_enabled = false;
    Datapath dp(cfg);
    for (uint32_t i = 0; i < 8; ++i)
      dp.install(MatchBuilder().ip().nw_dst_prefix(
                     Ipv4(static_cast<uint8_t>(20 + i), 0, 0, 0), 8 + i),
                 DpActions().output(1), 0);
    Packet p;
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kTcp);
    p.key.set_nw_dst(Ipv4(24, 0, 0, 1));
    p.key.set_tp_dst(80);
    const size_t iters = 500000 * mult;
    const double rate =
        measure(iters, [&](size_t i) { keep(dp.receive(p, i + 1)); });
    report_row(report, "megaflow_cache_hits", rate, {}, iters);
  }

  // --- Prefix trie -----------------------------------------------------------
  {
    PrefixTrie trie;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
      unsigned len = static_cast<unsigned>(rng.range(8, 32));
      uint32_t v = static_cast<uint32_t>(rng.next()) & ipv4_prefix_mask(len);
      trie.insert(PrefixBits::from_u32(v, len));
    }
    std::vector<PrefixBits> queries;
    for (int i = 0; i < 1024; ++i)
      queries.push_back(
          PrefixBits::from_u32(static_cast<uint32_t>(rng.next()), 32));
    const size_t iters = 500000 * mult;
    const double rate = measure(
        iters, [&](size_t i) { keep(trie.lookup(queries[i & 1023])); });
    report_row(report, "trie_lookups", rate, {}, iters);
  }

  // --- Cuckoo substrate (§4.1) -----------------------------------------------
  {
    CuckooMap64 m(1 << 16);
    for (uint64_t k = 1; k <= 40000; ++k) m.insert(k, hash_mix64(k));
    uint64_t v = 0;
    const size_t iters = 1000000 * mult;
    const double rate = measure(iters, [&](size_t i) {
      keep(m.find((i % 40000) + 1, &v));
    });
    report_row(report, "cuckoo_finds", rate, {}, iters);
  }
  {
    CuckooMap64 m(1 << 16);
    for (uint64_t k = 1; k <= 40000; ++k) m.insert(k, k);
    const size_t iters = 500000 * mult;
    const double rate = measure(iters, [&](size_t i) {
      const uint64_t k = 100000 + i;
      m.insert(k, k);
      m.erase(k);
    });
    report_row(report, "cuckoo_insert_erase", rate, {}, iters);
  }

  // --- §4.1 concurrent EMC: 3 readers vs 1 writer ----------------------------
  {
    ConcurrentEmc emc(8192);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::thread writer([&] {
      Rng rng(77);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t h = rng.uniform(16384);
        emc.install(h, hash_mix64(h | 1));
      }
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t)
      readers.emplace_back([&, t] {
        Rng rng(78 + t);
        uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          keep(emc.lookup(rng.uniform(16384)));
          ++n;
        }
        reads.fetch_add(n, std::memory_order_relaxed);
      });
    const double window_s = 0.2 * static_cast<double>(mult);
    const double t0 = now_s();
    while (now_s() - t0 < window_s) std::this_thread::yield();
    stop.store(true);
    writer.join();
    for (auto& th : readers) th.join();
    const double rate =
        static_cast<double>(reads.load()) / (now_s() - t0) / 3.0;
    report_row(report, "concurrent_emc_reads_per_thread", rate,
               {{"readers", "3"}, {"writers", "1"}},
               reads.load());
  }

  // --- Full-key hash ---------------------------------------------------------
  {
    Rng rng(5);
    FlowKey k;
    for (auto& w : k.w) w = rng.next();
    const size_t iters = 2000000 * mult;
    const double rate = measure(iters, [&](size_t) { keep(k.hash()); });
    report_row(report, "full_key_hashes", rate, {}, iters);
  }

  // --- Full NVP-style translation (userspace miss cost) ----------------------
  {
    Switch sw;
    NvpConfig cfg;
    cfg.stateful_acl_tenants = false;
    NvpTopology topo = install_nvp_pipeline(sw, cfg);
    auto t1 = topo.tenant_vms(1);
    Packet p = nvp_packet(*t1[0], *t1[1], 50000, 80);
    const size_t iters = 50000 * mult;
    const double rate = measure(iters, [&](size_t) {
      keep(sw.pipeline().translate(p.key, 0, /*side_effects=*/false));
    });
    report_row(report, "pipeline_translations", rate, {}, iters);
  }

  report.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return bench_main(argc, argv); }
