// Real (wall-clock) microbenchmarks of the classifier and caches, built on
// google-benchmark. The headline reference point is §7.2: "with a randomly
// generated table of half a million flow entries, the implementation is
// able to do roughly 6.8M hash lookups/s, on a single core — which
// translates to 680,000 classifications per second with 10 tuples".
//
// TupleSpaceLookup/500000/10 reports exactly that experiment: divide the
// reported classifications/s by 10 tuples for the per-hash-lookup rate.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "classifier/classifier.h"
#include "datapath/concurrent_emc.h"
#include "datapath/datapath.h"
#include "util/cuckoo.h"
#include "util/prefix_trie.h"
#include "workload/table_gen.h"

namespace ovs {
namespace {

struct LookupFixtureState {
  Classifier cls;
  std::vector<std::unique_ptr<OwnedRule>> rules;
  std::vector<FlowKey> packets;

  LookupFixtureState(size_t n_flows, size_t n_tuples, bool optimized)
      : cls(optimized ? ClassifierConfig{}
                      : ClassifierConfig::all_disabled()) {
    Rng rng(99);
    rules = build_random_classifier(cls, n_flows, n_tuples, rng);
    for (int i = 0; i < 4096; ++i)
      packets.push_back(random_classifier_packet(rng));
  }
};

void BM_TupleSpaceLookup(benchmark::State& state) {
  static std::map<std::pair<size_t, size_t>,
                  std::unique_ptr<LookupFixtureState>>
      cache;
  const size_t n_flows = static_cast<size_t>(state.range(0));
  const size_t n_tuples = static_cast<size_t>(state.range(1));
  auto& fx = cache[{n_flows, n_tuples}];
  if (!fx)
    fx = std::make_unique<LookupFixtureState>(n_flows, n_tuples, false);

  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx->cls.lookup(fx->packets[i++ & 4095], nullptr));
  }
  state.counters["classifications/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["hash_lookups/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n_tuples),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TupleSpaceLookup)
    ->Args({10000, 10})
    ->Args({100000, 10})
    ->Args({500000, 10})   // the paper's §7.2 data point
    ->Args({500000, 30});

// §5.3's claim: "with four stages, one might expect the time to search a
// tuple to quadruple. Our measurements show that, in fact, classification
// speed actually improves slightly in practice" — early stage terminations
// skip hashing the remaining key words. Compare flat vs staged on the same
// table (miss-heavy random traffic maximizes early terminations).
void BM_LookupFlatVsStaged(benchmark::State& state) {
  const bool staged = state.range(0) != 0;
  static std::map<bool, std::unique_ptr<LookupFixtureState>> cache;
  auto& fx = cache[staged];
  if (!fx) {
    fx = std::make_unique<LookupFixtureState>(100000, 12, false);
  }
  // Rebuild with the wanted staging config on first use.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = staged;
  static std::map<bool, std::unique_ptr<Classifier>> cls_cache;
  static std::map<bool, std::vector<std::unique_ptr<OwnedRule>>> rules_cache;
  auto& cls = cls_cache[staged];
  if (!cls) {
    cls = std::make_unique<Classifier>(cfg);
    Rng rng(99);
    rules_cache[staged] = build_random_classifier(*cls, 100000, 12, rng);
  }
  size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(cls->lookup(fx->packets[i++ & 4095], nullptr));
  state.counters["classifications/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LookupFlatVsStaged)->Arg(0)->Arg(1);

void BM_ClassifierLookupWithWildcards(benchmark::State& state) {
  static std::unique_ptr<LookupFixtureState> fx;
  if (!fx) fx = std::make_unique<LookupFixtureState>(50000, 12, true);
  size_t i = 0;
  for (auto _ : state) {
    FlowWildcards wc;
    benchmark::DoNotOptimize(fx->cls.lookup(fx->packets[i++ & 4095], &wc));
  }
}
BENCHMARK(BM_ClassifierLookupWithWildcards);

void BM_ClassifierInsertRemove(benchmark::State& state) {
  // §3.2: updates must be O(1) — "a single hash table operation".
  Classifier cls;
  Rng rng(7);
  std::vector<std::unique_ptr<OwnedRule>> warm =
      build_random_classifier(cls, 100000, 10, rng);
  Match m = MatchBuilder().tcp().nw_dst(Ipv4(1, 2, 3, 4)).tp_dst(80);
  OwnedRule rule(m, 555);
  for (auto _ : state) {
    cls.insert(&rule);
    cls.remove(&rule);
  }
}
BENCHMARK(BM_ClassifierInsertRemove);

void BM_MicroflowCacheHit(benchmark::State& state) {
  Datapath dp;
  dp.install(MatchBuilder().ip(), DpActions().output(1), 0);
  Packet p;
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_dst(Ipv4(1, 1, 1, 1));
  p.key.set_tp_dst(80);
  dp.receive(p, 0);  // warm: next receive is an EMC hit
  uint64_t t = 1;
  for (auto _ : state) benchmark::DoNotOptimize(dp.receive(p, ++t));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MicroflowCacheHit);

void BM_MegaflowCacheHit(benchmark::State& state) {
  DatapathConfig cfg;
  cfg.microflow_enabled = false;
  Datapath dp(cfg);
  for (uint32_t i = 0; i < 8; ++i)
    dp.install(MatchBuilder()
                   .ip()
                   .nw_dst_prefix(Ipv4(static_cast<uint8_t>(20 + i), 0, 0, 0),
                                  8 + i),
               DpActions().output(1), 0);
  Packet p;
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_dst(Ipv4(24, 0, 0, 1));
  p.key.set_tp_dst(80);
  uint64_t t = 0;
  for (auto _ : state) benchmark::DoNotOptimize(dp.receive(p, ++t));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MegaflowCacheHit);

void BM_TrieLookup(benchmark::State& state) {
  PrefixTrie trie;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    unsigned len = static_cast<unsigned>(rng.range(8, 32));
    uint32_t v = static_cast<uint32_t>(rng.next()) & ipv4_prefix_mask(len);
    trie.insert(PrefixBits::from_u32(v, len));
  }
  std::vector<PrefixBits> queries;
  for (int i = 0; i < 1024; ++i)
    queries.push_back(
        PrefixBits::from_u32(static_cast<uint32_t>(rng.next()), 32));
  size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(trie.lookup(queries[i++ & 1023]));
}
BENCHMARK(BM_TrieLookup);

void BM_CuckooFind(benchmark::State& state) {
  // The §4.1 concurrent flow-table substrate, read path.
  CuckooMap64 m(1 << 16);
  Rng rng(13);
  for (uint64_t k = 1; k <= 40000; ++k) m.insert(k, hash_mix64(k));
  uint64_t k = 1, v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(k, &v));
    k = (k % 40000) + 1;
  }
  state.counters["finds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CuckooFind);

void BM_CuckooInsertErase(benchmark::State& state) {
  CuckooMap64 m(1 << 16);
  for (uint64_t k = 1; k <= 40000; ++k) m.insert(k, k);
  uint64_t k = 100000;
  for (auto _ : state) {
    m.insert(k, k);
    m.erase(k);
    ++k;
  }
}
BENCHMARK(BM_CuckooInsertErase);

// §4.1's concurrency claim, measured: reader threads probe the EMC while
// thread 0 churns installs/evictions. Reported rate is per-thread.
void BM_ConcurrentEmcMixed(benchmark::State& state) {
  static ConcurrentEmc emc(8192);  // shared across threads; reused per run
  Rng rng(77 + state.thread_index());
  if (state.thread_index() == 0) {
    for (auto _ : state) {
      const uint64_t h = rng.uniform(16384);
      emc.install(h, hash_mix64(h | 1));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(emc.lookup(rng.uniform(16384)));
    }
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentEmcMixed)->Threads(4)->UseRealTime();

void BM_FullKeyHash(benchmark::State& state) {
  Rng rng(5);
  FlowKey k;
  for (auto& w : k.w) w = rng.next();
  for (auto _ : state) benchmark::DoNotOptimize(k.hash());
}
BENCHMARK(BM_FullKeyHash);

void BM_PipelineTranslate(benchmark::State& state) {
  // One full NVP-style translation: the userspace cost of a cache miss.
  Switch sw;
  NvpConfig cfg;
  cfg.stateful_acl_tenants = false;
  NvpTopology topo = install_nvp_pipeline(sw, cfg);
  auto t1 = topo.tenant_vms(1);
  Packet p = nvp_packet(*t1[0], *t1[1], 50000, 80);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sw.pipeline().translate(p.key, 0, /*side_effects=*/false));
  }
  state.counters["translations/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineTranslate);

}  // namespace
}  // namespace ovs

// BENCHMARK_MAIN, plus a default machine-readable sidecar: unless the
// caller passed --benchmark_out explicitly, results also land in
// BENCH_raw_lookup.json (google-benchmark's native JSON schema).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_raw_lookup.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
      has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
