// The port-scan scenario that motivates caching-aware classification
// (§5.1, §5.3): a port scan sweeps thousands of destination ports. If even
// one flow in the table matches on TCP ports, a naive cache needs one
// megaflow per scanned port; staged lookup and port prefix tracking keep
// the megaflows wide so the scan stays in the kernel cache.
//
// Run: build/examples/example_port_scan_acl
#include <cstdio>

#include "sim/clock.h"
#include "vswitchd/switch.h"
#include "workload/workloads.h"

using namespace ovs;

namespace {

struct ScanOutcome {
  size_t megaflows;
  uint64_t misses;
  double hit_rate;
};

ScanOutcome run_scan(const ClassifierConfig& cls, bool acl_applies_to_target) {
  SwitchConfig cfg;
  cfg.classifier = cls;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);

  // Logical datapath 1 has an L4 ACL (block SMTP); logical datapath 2 has
  // none. The scanned host lives on datapath 1 or 2 per the flag.
  sw.table(0).add_flow(MatchBuilder().metadata(1).tcp().tp_dst(25), 100,
                       OfActions::drop());
  sw.table(0).add_flow(MatchBuilder().metadata(1).ip(), 10,
                       OfActions().output(2));
  sw.table(0).add_flow(MatchBuilder().metadata(2).ip(), 10,
                       OfActions().output(2));

  PortScanWorkload::Config scan_cfg;
  PortScanWorkload scan(scan_cfg);
  VirtualClock clock;
  const size_t kProbes = 5000;
  for (size_t i = 0; i < kProbes; ++i) {
    Packet p = scan.next();
    p.key.set_metadata(acl_applies_to_target ? 1 : 2);
    sw.inject(p, clock.now());
    sw.handle_upcalls(clock.now());
    clock.advance(kMicrosecond);
  }
  const auto& s = sw.datapath().stats();
  return {sw.datapath().flow_count(), s.misses,
          static_cast<double>(s.microflow_hits + s.megaflow_hits) /
              static_cast<double>(s.packets)};
}

void report(const char* label, const ScanOutcome& o) {
  std::printf("%-46s %9zu %8llu %8.1f%%\n", label, o.megaflows,
              (unsigned long long)o.misses, 100 * o.hit_rate);
}

}  // namespace

int main() {
  std::printf("5000-port TCP scan against a host behind an OVS pipeline "
              "with an SMTP ACL\n\n");
  std::printf("%-46s %9s %8s %9s\n", "configuration", "megaflows", "misses",
              "hit rate");

  // Naive caching: every probe creates (and misses into) its own megaflow.
  report("no caching-aware optimizations, ACL datapath",
         run_scan(ClassifierConfig::all_disabled(), true));

  // Port prefix tracking keeps the ports wildcarded except near port 25.
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.staged_lookup = true;
    c.port_prefix_tracking = true;
    report("staged lookup + port prefix tracking, ACL dp",
           run_scan(c, true));
  }

  // A datapath WITHOUT L4 ACLs must be entirely unaffected: staged lookup
  // stops at the metadata/L3 stages of the ACL tuple (§5.3).
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.staged_lookup = true;
    report("staged lookup only, scan on the ACL-free dp",
           run_scan(c, false));
  }

  // Everything on (the shipped configuration).
  report("all optimizations, ACL datapath", run_scan({}, true));
  report("all optimizations, ACL-free datapath", run_scan({}, false));

  std::printf(
      "\nreading: without the optimizations the scan is one flow setup per\n"
      "probe (the §5.1 pathology); with them the whole scan collapses into\n"
      "a handful of megaflows and stays in the kernel cache.\n");
  return 0;
}
