// Quickstart: program a switch, push packets, watch the two-level cache
// work. Run: build/examples/example_quickstart
#include <cstdio>

#include "sim/clock.h"
#include "vswitchd/switch.h"

using namespace ovs;

namespace {

Packet make_tcp(uint32_t in_port, Ipv4 src, Ipv4 dst, uint16_t sport,
                uint16_t dport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 1));
  p.key.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 2));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(src);
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 200;
  return p;
}

const char* path_name(Datapath::Path p) {
  switch (p) {
    case Datapath::Path::kOffloadHit:
      return "NIC offload hit";
    case Datapath::Path::kMicroflowHit:
      return "microflow (EMC) hit";
    case Datapath::Path::kMegaflowHit:
      return "megaflow hit";
    case Datapath::Path::kMiss:
      return "miss -> upcall to userspace";
  }
  return "?";
}

}  // namespace

int main() {
  // 1. Build a switch with two ports.
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  sw.set_output_handler([](uint32_t port, const Packet& pkt) {
    std::printf("    -> transmitted on port %u (%s)\n", port,
                pkt.key.to_string().c_str());
  });

  // 2. Program OpenFlow table 0: route 10/8 out of port 2, ARP flooded.
  sw.table(0).add_flow(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10,
      OfActions().output(2));
  sw.table(0).add_flow(MatchBuilder().arp(), 20, OfActions().normal());

  VirtualClock clock;

  // 3. First packet of a connection: datapath miss, flow setup, forward.
  Packet p1 = make_tcp(1, Ipv4(192, 168, 0, 5), Ipv4(10, 1, 2, 3), 40000, 80);
  std::printf("packet 1: %s\n", path_name(sw.inject(p1, clock.now())));
  sw.handle_upcalls(clock.now());
  std::printf("  userspace translated the miss and installed a megaflow:\n");
  for (const MegaflowEntry* e : sw.datapath().dump())
    std::printf("    megaflow{%s} actions=%s\n",
                e->match().mask.to_string().c_str(),
                e->actions().to_string().c_str());

  // 4. Second packet of the same connection: kernel megaflow hit.
  std::printf("packet 2: %s\n", path_name(sw.inject(p1, clock.now())));
  // 5. Third: exact-match microflow cache hit.
  std::printf("packet 3: %s\n", path_name(sw.inject(p1, clock.now())));

  // 6. A *different* connection to a different 10/8 host still hits the
  // same megaflow — this is the point of caching-aware classification:
  // the megaflow matched only the consulted bits (eth_type + 8 dst bits).
  Packet p2 = make_tcp(1, Ipv4(192, 168, 0, 9), Ipv4(10, 9, 9, 9), 51515, 443);
  std::printf("packet 4 (new connection): %s\n",
              path_name(sw.inject(p2, clock.now())));

  // 7. Stats.
  const auto& dp = sw.datapath().stats();
  std::printf("\ndatapath: %llu packets, %llu EMC hits, %llu megaflow hits, "
              "%llu misses; %zu flows, %zu masks\n",
              (unsigned long long)dp.packets,
              (unsigned long long)dp.microflow_hits,
              (unsigned long long)dp.megaflow_hits,
              (unsigned long long)dp.misses, sw.datapath().flow_count(),
              sw.datapath().mask_count());
  std::printf("port 2 tx: %llu packets\n",
              (unsigned long long)sw.port_stats(2).tx_packets);

  // 8. Maintenance: after 10 idle seconds the revalidators evict the flow.
  clock.advance(11 * kSecond);
  sw.run_maintenance(clock.now());
  std::printf("after 11 idle seconds: %zu flows in the datapath\n",
              sw.datapath().flow_count());
  return 0;
}
