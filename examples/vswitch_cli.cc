// vswitch-cli: an ovs-ofctl-style interactive shell around a Switch.
//
// Run: build/examples/example_vswitch_cli          (interactive / piped)
//      build/examples/example_vswitch_cli --demo   (scripted demo)
//
// Commands:
//   add-port <n>
//   add-flow <flow>        e.g. add-flow table=0, priority=10, tcp, actions=output:2
//   del-flows              clear all tables
//   dump-flows             print OpenFlow tables
//   dump-megaflows         print the datapath cache
//   inject <in_port> <proto> <src_ip> <dst_ip> <sport> <dport>
//   tick                   advance 1s of virtual time + run maintenance
//   stats
//   help | quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "ofproto/flow_parser.h"
#include "sim/clock.h"
#include "vswitchd/config.h"
#include "vswitchd/switch.h"

using namespace ovs;

namespace {

struct Cli {
  Switch sw;
  VirtualClock clock;

  void help() {
    std::printf(
        "commands: add-port N | add-flow FLOW | del-flows [MATCH] |\n"
        "          dump-flows | dump-megaflows | save | load LINE.. |\n"
        "          inject PORT PROTO SRC DST SPORT DPORT |\n"
        "          tick | stats | help | quit\n");
  }

  bool handle(const std::string& line) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      help();
    } else if (cmd == "add-port") {
      uint32_t p = 0;
      if (is >> p) {
        sw.add_port(p);
        std::printf("ok\n");
      } else {
        std::printf("usage: add-port N\n");
      }
    } else if (cmd == "add-flow") {
      std::string rest;
      std::getline(is, rest);
      const std::string err = sw.add_flow(rest);
      std::printf("%s\n", err.empty() ? "ok" : err.c_str());
    } else if (cmd == "del-flows") {
      std::string rest;
      std::getline(is, rest);
      size_t n = 0;
      const std::string err = sw.del_flows(rest, &n);
      if (err.empty())
        std::printf("deleted %zu flow(s)\n", n);
      else
        std::printf("%s\n", err.c_str());
    } else if (cmd == "save") {
      std::printf("%s", save_switch_config(sw).c_str());
    } else if (cmd == "dump-flows") {
      for (const std::string& f : sw.dump_flows())
        std::printf("  %s\n", f.c_str());
    } else if (cmd == "dump-megaflows") {
      for (const MegaflowEntry* e : sw.datapath().dump())
        std::printf("  mask{%s} key{%s} packets=%llu actions=%s\n",
                    e->match().mask.to_string().c_str(),
                    e->match().key.to_string().c_str(),
                    (unsigned long long)e->packets(),
                    e->actions().to_string().c_str());
    } else if (cmd == "inject") {
      uint32_t port = 0;
      std::string proto, src, dst;
      uint16_t sport = 0, dport = 0;
      if (!(is >> port >> proto >> src >> dst >> sport >> dport)) {
        std::printf("usage: inject PORT tcp|udp|icmp SRC DST SPORT DPORT\n");
        return true;
      }
      // Reuse the flow parser's address handling via a synthetic match.
      FlowParseResult pr = parse_flow(proto + ", nw_src=" + src +
                                      ", nw_dst=" + dst + ", actions=drop");
      if (!pr.ok) {
        std::printf("%s\n", pr.error.c_str());
        return true;
      }
      Packet p;
      p.key = pr.flow.match.key;
      p.key.set_in_port(port);
      p.key.set_tp_src(sport);
      p.key.set_tp_dst(dport);
      auto path = sw.inject(p, clock.now());
      sw.handle_upcalls(clock.now());
      const char* names[] = {"offload hit", "microflow hit", "megaflow hit",
                             "miss -> flow setup"};
      std::printf("%s\n", names[static_cast<int>(path)]);
    } else if (cmd == "tick") {
      clock.advance(kSecond);
      sw.run_maintenance(clock.now());
      std::printf("t=%llus\n", (unsigned long long)(clock.now() / kSecond));
    } else if (cmd == "stats") {
      const auto& s = sw.datapath().stats();
      std::printf("packets=%llu emc_hits=%llu megaflow_hits=%llu "
                  "misses=%llu flows=%zu masks=%zu setups=%llu\n",
                  (unsigned long long)s.packets,
                  (unsigned long long)s.microflow_hits,
                  (unsigned long long)s.megaflow_hits,
                  (unsigned long long)s.misses, sw.datapath().flow_count(),
                  sw.datapath().mask_count(),
                  (unsigned long long)sw.counters().flow_setups);
    } else {
      std::printf("unknown command '%s' (try help)\n", cmd.c_str());
    }
    return true;
  }
};

const char* kDemoScript[] = {
    "add-port 1",
    "add-port 2",
    "add-flow table=0, priority=10, tcp, nw_dst=9.1.1.0/24, actions=output:2",
    "add-flow table=0, priority=20, tcp, tp_dst=25, actions=drop",
    "dump-flows",
    "inject 1 tcp 10.0.0.1 9.1.1.7 40000 80",
    "inject 1 tcp 10.0.0.1 9.1.1.7 40000 80",
    "inject 1 tcp 10.0.0.2 9.1.1.9 41000 443",
    "inject 1 tcp 10.0.0.3 9.1.1.9 42000 25",
    "dump-megaflows",
    "stats",
    "tick",
    "del-flows tcp, tp_dst=25",
    "dump-flows",
    "save",
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";
  if (demo) {
    for (const char* line : kDemoScript) {
      std::printf("vswitch> %s\n", line);
      cli.handle(line);
    }
    return 0;
  }
  cli.help();
  std::string line;
  while (std::printf("vswitch> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (!cli.handle(line)) break;
  }
  return 0;
}
