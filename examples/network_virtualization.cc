// Network virtualization (the paper's motivating workload, §1-§3): an
// NVP-style multi-table pipeline with logical datapaths for two tenants,
// tunnel ingress, per-tenant ACLs, and register-based forwarding — and a
// look at the megaflows it generates.
//
// Run: build/examples/example_network_virtualization
#include <cstdio>

#include "sim/clock.h"
#include "vswitchd/switch.h"
#include "workload/table_gen.h"

using namespace ovs;

int main() {
  Switch sw;
  NvpConfig cfg;
  cfg.n_tenants = 2;
  cfg.vms_per_tenant = 3;
  cfg.acl_tenant_fraction = 0.5;  // tenant 1 carries L4 ACLs, tenant 2 not
  cfg.acls_per_tenant = 2;
  NvpTopology topo = install_nvp_pipeline(sw, cfg);

  std::printf("pipeline: 4 tables, %zu flows total; %zu VMs over 2 logical "
              "datapaths\n",
              sw.pipeline().flow_count(), topo.vms.size());
  for (const NvpVm& vm : topo.vms)
    std::printf("  tenant %llu  port %-3u mac %s ip %s\n",
                (unsigned long long)vm.tenant, vm.port,
                vm.mac.to_string().c_str(), vm.ip.to_string().c_str());

  VirtualClock clock;
  auto t1 = topo.tenant_vms(1);
  auto t2 = topo.tenant_vms(2);

  // Intra-tenant traffic flows; cross-tenant traffic is isolated.
  std::printf("\n-- tenant isolation --\n");
  {
    Packet ok = nvp_packet(*t1[0], *t1[1], 40000, 443);
    sw.inject(ok, clock.now());
    sw.handle_upcalls(clock.now());
    std::printf("tenant1 VM->VM:        delivered=%llu (expected 1)\n",
                (unsigned long long)sw.port_stats(t1[1]->port).tx_packets);
    Packet cross = nvp_packet(*t1[0], *t2[0], 40000, 443);
    sw.inject(cross, clock.now());
    sw.handle_upcalls(clock.now());
    std::printf("tenant1 -> tenant2 VM: delivered=%llu (expected 0; "
                "different logical datapath)\n",
                (unsigned long long)sw.port_stats(t2[0]->port).tx_packets);
  }

  // Tunnel ingress: traffic from a remote hypervisor is classified onto
  // the tenant's logical datapath by tunnel key.
  std::printf("\n-- tunnel ingress --\n");
  {
    Packet p = nvp_packet(*t2[0], *t2[1], 40000, 443);
    p.key.set_in_port(cfg.tunnel_port);
    p.key.set_tun_id(2);
    sw.inject(p, clock.now());
    sw.handle_upcalls(clock.now());
    std::printf("remote -> tenant2 VM via tunnel (tun_id=2): delivered=%llu\n",
                (unsigned long long)sw.port_stats(t2[1]->port).tx_packets);
  }

  // The megaflows: ACL-tenant flows match L4 ports; the other tenant's
  // flows leave them wildcarded (§5.3's logical-datapath example).
  std::printf("\n-- generated megaflows --\n");
  for (const MegaflowEntry* e : sw.datapath().dump())
    std::printf("  %-10s mask{%s}\n",
                e->actions().drops() ? "[drop]" : "[fwd]",
                e->match().mask.to_string().c_str());

  // ACL enforcement.
  std::printf("\n-- ACLs --\n");
  {
    const uint16_t blocked = topo.blocked_ports.front();
    Packet p = nvp_packet(*t1[0], *t1[1], 40000, blocked);
    const uint64_t before = sw.port_stats(t1[1]->port).tx_packets;
    sw.inject(p, clock.now());
    sw.handle_upcalls(clock.now());
    std::printf("tenant1 traffic to blocked port %u: delivered=%llu "
                "(expected 0)\n",
                blocked,
                (unsigned long long)(sw.port_stats(t1[1]->port).tx_packets -
                                     before));
  }

  const auto& s = sw.datapath().stats();
  std::printf("\ndatapath: %llu packets, %.0f%% cache hits, %zu megaflows, "
              "%zu masks\n",
              (unsigned long long)s.packets,
              100.0 *
                  static_cast<double>(s.microflow_hits + s.megaflow_hits) /
                  static_cast<double>(s.packets),
              sw.datapath().flow_count(), sw.datapath().mask_count());
  return 0;
}
