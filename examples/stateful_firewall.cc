// Stateful firewalling with the connection-tracking action (§8.1): allow
// outbound connections from the protected side, allow replies, drop
// unsolicited inbound traffic — without involving a controller per packet.
//
// Run: build/examples/example_stateful_firewall
#include <cstdio>

#include "sim/clock.h"
#include "vswitchd/switch.h"

using namespace ovs;

namespace {

Packet tcp(uint32_t in_port, Ipv4 src, Ipv4 dst, uint16_t sport,
           uint16_t dport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, (uint8_t)in_port));
  p.key.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 0x42));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(src);
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  return p;
}

}  // namespace

int main() {
  // Port 1 = inside (protected), port 2 = outside.
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);

  // Table 0: all IP traffic goes through conntrack, then table 1 decides.
  sw.table(0).add_flow(MatchBuilder().ip(), 10, OfActions().ct(1));
  // Table 1 policy:
  //   new connections from inside: commit and allow out;
  sw.table(1).add_flow(MatchBuilder().in_port(1).ct_state(ct_state::kNew),
                       30, OfActions().ct(1, /*commit=*/true));
  //   established traffic in either direction: allow;
  sw.table(1).add_flow(
      MatchBuilder().in_port(1).ct_state(ct_state::kEstablished), 20,
      OfActions().output(2));
  sw.table(1).add_flow(
      MatchBuilder().in_port(2).ct_state(ct_state::kEstablished |
                                         ct_state::kReply),
      20, OfActions().output(1));
  //   everything else (unsolicited inbound): drop. (Table miss drops.)

  VirtualClock clock;
  const Ipv4 inside(10, 0, 0, 5);
  const Ipv4 outside(93, 184, 216, 34);

  auto attempt = [&](const char* what, const Packet& p, uint32_t out_port) {
    const uint64_t before = sw.port_stats(out_port).tx_packets;
    sw.inject(p, clock.now());
    sw.handle_upcalls(clock.now());
    const bool delivered = sw.port_stats(out_port).tx_packets > before;
    std::printf("%-52s %s\n", what, delivered ? "DELIVERED" : "dropped");
  };

  std::printf("policy: inside may open connections; outside may only "
              "reply\n\n");
  attempt("inside  -> outside, SYN (new, commits)",
          tcp(1, inside, outside, 40000, 443), 2);
  attempt("outside -> inside, reply on that connection",
          tcp(2, outside, inside, 443, 40000), 1);
  attempt("inside  -> outside, more data",
          tcp(1, inside, outside, 40000, 443), 2);
  attempt("outside -> inside, unsolicited SSH probe",
          tcp(2, outside, inside, 55555, 22), 1);
  attempt("outside -> inside, spoofed 'reply' on a dead port",
          tcp(2, outside, inside, 443, 41111), 1);

  std::printf("\nconnections tracked: %zu\n", sw.pipeline().conntrack().size());
  std::printf("megaflows installed (per-connection, as ct requires):\n");
  for (const MegaflowEntry* e : sw.datapath().dump())
    std::printf("  %-7s %s\n", e->actions().drops() ? "[drop]" : "[allow]",
                e->match().key.to_string().c_str());
  return 0;
}
