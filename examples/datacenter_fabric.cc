// A miniature datacenter: hypervisors joined by a tunnel mesh, tenants
// spread across them, live migration — the deployment the paper's switch
// was built for (§1-§2).
//
// Run: build/examples/example_datacenter_fabric
#include <cstdio>

#include "net/fabric.h"
#include "sim/clock.h"

using namespace ovs;

int main() {
  Fabric::Config cfg;
  cfg.n_hypervisors = 4;
  cfg.n_tenants = 2;
  cfg.vms_per_tenant_per_hv = 1;
  cfg.acl_tenants = 1;
  Fabric fab(cfg);
  VirtualClock clock;

  std::printf("fabric: %zu hypervisors, %zu VMs, full tunnel mesh\n",
              fab.n_hypervisors(), fab.vms().size());
  for (const Fabric::Vm& vm : fab.vms())
    std::printf("  vm%zu tenant %llu on hypervisor %zu port %u (%s)\n",
                vm.id, (unsigned long long)vm.tenant, vm.hypervisor, vm.port,
                vm.ip.to_string().c_str());

  const Fabric::Vm* src = nullptr;
  const Fabric::Vm* dst = nullptr;
  for (const Fabric::Vm& v : fab.vms()) {
    if (v.tenant != 1) continue;
    if (v.hypervisor == 0) src = &v;
    if (v.hypervisor == 3) dst = &v;
  }

  std::printf("\n-- cross-hypervisor traffic --\n");
  auto d = fab.send(*src, *dst, 40000, 443, clock.now());
  std::printf("vm%zu -> vm%zu: %s via %zu tunnel hop(s), landed on "
              "hypervisor %zu\n",
              src->id, dst->id, d.delivered ? "delivered" : "DROPPED",
              d.tunnel_hops, d.dst_hypervisor);

  std::printf("\n-- the tenant's ACL holds across tunnels --\n");
  auto smtp = fab.send(*src, *dst, 40001, 25, clock.now());
  std::printf("vm%zu -> vm%zu port 25 (blocked): %s\n", src->id, dst->id,
              smtp.delivered ? "DELIVERED (bug!)" : "dropped");

  std::printf("\n-- steady state: new connections ride the megaflows --\n");
  const uint64_t setups0 = fab.hypervisor(0).counters().flow_setups;
  for (uint16_t i = 0; i < 100; ++i)
    fab.send(*src, *dst, static_cast<uint16_t>(42000 + i), 443, clock.now());
  std::printf("100 new connections caused %llu additional flow setups on "
              "the source hypervisor\n",
              (unsigned long long)(fab.hypervisor(0).counters().flow_setups -
                                   setups0));

  std::printf("\n-- live migration --\n");
  std::printf("vm%zu migrates from hypervisor %zu to 1...\n", dst->id,
              dst->hypervisor);
  clock.advance(kSecond);
  fab.migrate(dst->id, 1, clock.now());
  fab.tick(clock.now());
  const Fabric::Vm& moved = fab.vms()[dst->id];
  auto after = fab.send(*src, moved, 43000, 443, clock.now());
  std::printf("traffic now lands on hypervisor %zu port %u (%s)\n",
              after.dst_hypervisor, after.dst_port,
              after.delivered ? "delivered" : "DROPPED");

  std::printf("\nper-hypervisor caches:\n");
  for (size_t h = 0; h < fab.n_hypervisors(); ++h) {
    auto& sw = fab.hypervisor(h);
    const auto& s = sw.datapath().stats();
    std::printf("  hv%zu: %llu pkts, %zu megaflows, %zu masks, "
                "%llu flow setups\n",
                h, (unsigned long long)s.packets,
                sw.datapath().flow_count(), sw.datapath().mask_count(),
                (unsigned long long)sw.counters().flow_setups);
  }
  return 0;
}
