// A plain L2 learning switch built from the NORMAL action — plus the cache
// invalidation story of §6: when a VM migrates (its MAC moves to another
// port), the revalidators repair every cached flow that depended on the old
// binding, without traffic interruption beyond one maintenance round.
//
// Run: build/examples/example_mac_learning_switch
#include <cstdio>

#include "sim/clock.h"
#include "vswitchd/switch.h"

using namespace ovs;

namespace {

Packet frame(uint32_t in_port, EthAddr src, EthAddr dst) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(src);
  p.key.set_eth_dst(dst);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kUdp);
  p.key.set_nw_src(Ipv4(10, 0, 0, 1));
  p.key.set_nw_dst(Ipv4(10, 0, 0, 2));
  p.key.set_tp_src(1111);
  p.key.set_tp_dst(2222);
  return p;
}

}  // namespace

int main() {
  Switch sw;
  for (uint32_t p = 1; p <= 4; ++p) sw.add_port(p);
  sw.table(0).add_flow(Match{}, 0, OfActions().normal());

  const EthAddr host_a(0x02, 0, 0, 0, 0, 0xaa);
  const EthAddr host_b(0x02, 0, 0, 0, 0, 0xbb);
  VirtualClock clock;

  // First frame from A: destination unknown -> flooded; A learned @ port 1.
  std::printf("A(port1) -> B: ");
  sw.inject(frame(1, host_a, host_b), clock.now());
  sw.handle_upcalls(clock.now());
  std::printf("flooded to %llu ports (B unknown)\n",
              (unsigned long long)sw.counters().tx_packets);

  // B answers from port 2: unicast back to A; B learned @ port 2.
  sw.inject(frame(2, host_b, host_a), clock.now());
  sw.handle_upcalls(clock.now());

  // Now A->B is unicast and cached.
  for (int i = 0; i < 3; ++i) {
    sw.inject(frame(1, host_a, host_b), clock.now());
    sw.handle_upcalls(clock.now());
  }
  std::printf("A -> B steady state: port2 tx=%llu, %zu megaflows, MAC table "
              "%zu entries\n",
              (unsigned long long)sw.port_stats(2).tx_packets,
              sw.datapath().flow_count(), sw.pipeline().mac_learning().size());

  // B migrates to port 4 and announces itself (gratuitous frame).
  std::printf("\nB migrates from port 2 to port 4...\n");
  clock.advance(kSecond);
  sw.inject(frame(4, host_b, kEthBroadcast), clock.now());
  sw.handle_upcalls(clock.now());
  sw.run_maintenance(clock.now());  // revalidators repair cached flows (§6)
  std::printf("maintenance: %llu cached flows had their actions updated\n",
              (unsigned long long)sw.counters().reval_updated_actions);

  const uint64_t p2 = sw.port_stats(2).tx_packets;
  const uint64_t p4 = sw.port_stats(4).tx_packets;
  sw.inject(frame(1, host_a, host_b), clock.now());
  sw.handle_upcalls(clock.now());
  std::printf("A -> B after migration: port2 +%llu, port4 +%llu "
              "(traffic follows the VM)\n",
              (unsigned long long)(sw.port_stats(2).tx_packets - p2),
              (unsigned long long)(sw.port_stats(4).tx_packets - p4));

  // Idle aging: stop talking and the cache drains.
  clock.advance(15 * kSecond);
  sw.run_maintenance(clock.now());
  std::printf("\nafter 15 idle seconds: %zu megaflows (idle-evicted, §6)\n",
              sw.datapath().flow_count());
  return 0;
}
